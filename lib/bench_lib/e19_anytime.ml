(* E19 — anytime behaviour of LID: how quickly does satisfaction
   accumulate in virtual time?  The protocol locks its heaviest
   connections early (locally heaviest edges need no coordination), so
   most of the final satisfaction is in place after a couple of message
   round-trips — the practically interesting "figure" for deployments
   that cannot wait for full quiescence. *)

module Tbl = Owp_util.Tablefmt

let run ~quick =
  let n = if quick then 400 else 2000 in
  let t =
    Tbl.create
      ~title:
        (Printf.sprintf
           "E19: satisfaction accumulated by virtual time t (LID, delays U[0.5,1.5], n = %d, b = 3)"
           n)
      [
        ("family", Tbl.Left);
        ("t=1", Tbl.Right);
        ("t=2", Tbl.Right);
        ("t=3", Tbl.Right);
        ("t=5", Tbl.Right);
        ("t=8", Tbl.Right);
        ("final time", Tbl.Right);
      ]
  in
  List.iter
    (fun family ->
      let inst =
        Workloads.make ~seed:19 ~family ~pref_model:Workloads.Random_prefs ~n ~quota:3
      in
      (* log both directions of each lock; a connection contributes to a
         node's satisfaction from the moment that node locks it *)
      let locks = ref [] in
      let r =
        Owp_core.Lid.run ~seed:20
          ~on_lock:(fun time i v -> locks := (time, i, v) :: !locks)
          inst.Workloads.weights ~capacity:inst.Workloads.capacity
      in
      let final =
        Exp_common.total_satisfaction inst.Workloads.prefs r.Owp_core.Lid.matching
      in
      let at_time horizon =
        let conns = Array.make (Graph.node_count inst.Workloads.graph) [] in
        List.iter
          (fun (time, i, v) -> if time <= horizon then conns.(i) <- v :: conns.(i))
          !locks;
        let acc = ref 0.0 in
        Array.iteri
          (fun i c -> acc := !acc +. Preference.satisfaction inst.Workloads.prefs i c)
          conns;
        if Float.equal final 0.0 then 1.0 else !acc /. final
      in
      Tbl.add_row t
        [
          Workloads.family_name family;
          Tbl.pct (at_time 1.0);
          Tbl.pct (at_time 2.0);
          Tbl.pct (at_time 3.0);
          Tbl.pct (at_time 5.0);
          Tbl.pct (at_time 8.0);
          Tbl.fcell2 r.Owp_core.Lid.completion_time;
        ])
    Workloads.standard_families;
  [ t ]

let exp =
  {
    Exp_common.id = "E19";
    title = "Anytime satisfaction profile";
    paper_ref = "LID dynamics (extension figure)";
    run;
  }
