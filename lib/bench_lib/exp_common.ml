module Tbl = Owp_util.Tablefmt

type exp = {
  id : string;
  title : string;
  paper_ref : string;
  run : quick:bool -> Tbl.t list;
}

let total_satisfaction prefs m =
  Preference.total_satisfaction prefs (Owp_matching.Bmatching.connection_lists m)

let run_lid (inst : Workloads.instance) =
  Owp_core.Lid.run ~seed:(Hashtbl.hash inst.Workloads.label) inst.Workloads.weights
    ~capacity:inst.Workloads.capacity

let run_lic (inst : Workloads.instance) =
  Owp_core.Lic.run inst.Workloads.weights ~capacity:inst.Workloads.capacity

let run_greedy (inst : Workloads.instance) =
  Owp_matching.Greedy.run inst.Workloads.weights ~capacity:inst.Workloads.capacity

let quiescence_cell (r : Owp_core.Lid.report) =
  if r.Owp_core.Lid.all_terminated then "yes"
  else
    let stragglers =
      List.filter_map
        (fun v ->
          match v.Owp_check.Violation.subject with
          | Owp_check.Violation.Node i -> Some (string_of_int i)
          | _ -> None)
        r.Owp_core.Lid.quiescence
    in
    let shown =
      match stragglers with
      | a :: b :: c :: d :: e :: f :: _ :: _ -> [ a; b; c; d; e; f; "..." ]
      | l -> l
    in
    Printf.sprintf "NO (%d stuck: %s)" (List.length stragglers)
      (String.concat "," shown)

(* --jobs: how many domains the experiment sweeps may use.  A ref, not
   a parameter, so the two dozen existing experiment signatures stay
   unchanged; the harness entry points set it once before running. *)
let jobs = ref 1

let trial_map f xs = Owp_util.Pool.map_list ~jobs:!jobs f xs

let time f = Owp_util.Clock.time f

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let minimum = function [] -> 0.0 | x :: xs -> List.fold_left Float.min x xs

let header e = Printf.sprintf "== %s: %s  [%s] ==" e.id e.title e.paper_ref
