(* E13 — overlay routing quality: path stretch of the constructed
   overlay vs the full potential graph (latency scenario of §1).

   The matching uses only b connections per peer out of deg potential
   ones; stretch measures what that sparsification costs in end-to-end
   route length.  LID's latency-preferring overlay is compared with a
   random maximal overlay of the same degree budget. *)

module Tbl = Owp_util.Tablefmt
module BM = Owp_matching.Bmatching
module Prng = Owp_util.Prng

let euclid pts u v =
  let xu, yu = pts.(u) and xv, yv = pts.(v) in
  sqrt (((xu -. xv) ** 2.0) +. ((yu -. yv) ** 2.0))

let random_maximal rng g capacity =
  let order = Prng.permutation rng (Graph.edge_count g) in
  let residual = Array.copy capacity in
  let chosen = ref [] in
  Array.iter
    (fun eid ->
      let u, v = Graph.edge_endpoints g eid in
      if residual.(u) > 0 && residual.(v) > 0 then begin
        residual.(u) <- residual.(u) - 1;
        residual.(v) <- residual.(v) - 1;
        chosen := eid :: !chosen
      end)
    order;
  BM.of_edge_ids g ~capacity !chosen

let stretch_stats g pts m samples =
  let length eid =
    let u, v = Graph.edge_endpoints g eid in
    euclid pts u v
  in
  let xs = Spath.path_stretch g ~length ~subgraph:(fun e -> BM.mem m e) ~samples in
  let finite = List.filter (fun x -> not (Float.equal x infinity)) xs in
  let disconnected = List.length xs - List.length finite in
  let mean =
    if List.is_empty finite then nan
    else List.fold_left ( +. ) 0.0 finite /. float_of_int (List.length finite)
  in
  let p95 = if List.is_empty finite then nan else Owp_util.Stats.percentile (Array.of_list finite) 0.95 in
  (mean, p95, disconnected, List.length xs)

let run ~quick =
  let n = if quick then 300 else 1000 in
  let nsamples = if quick then 60 else 250 in
  let t =
    Tbl.create
      ~title:
        (Printf.sprintf
           "E13: overlay path stretch, random geometric graph (n = %d, latency prefs)" n)
      [
        ("quota b", Tbl.Right);
        ("overlay", Tbl.Left);
        ("mean stretch", Tbl.Right);
        ("p95 stretch", Tbl.Right);
        ("disconnected pairs", Tbl.Right);
      ]
  in
  let rng = Prng.create 0xE13 in
  let g, pts = Gen.random_geometric rng ~n ~radius:(if quick then 0.12 else 0.07) in
  let samples =
    List.init nsamples (fun _ ->
        (Prng.int rng (Graph.node_count g), Prng.int rng (Graph.node_count g)))
    |> List.filter (fun (a, b) -> a <> b)
  in
  List.iter
    (fun quota ->
      let prefs =
        Preference.of_metric g ~quota:(Preference.uniform_quota g quota)
          (Metric.latency pts)
      in
      let w = Weights.of_preference prefs in
      let capacity = Array.init (Graph.node_count g) (Preference.quota prefs) in
      let lid = Owp_core.Lid.run ~seed:13 w ~capacity in
      let rnd = random_maximal rng g capacity in
      List.iter
        (fun (name, m) ->
          let mean, p95, disc, total = stretch_stats g pts m samples in
          Tbl.add_row t
            [
              Tbl.icell quota;
              name;
              (if Float.is_nan mean then "n/a" else Tbl.fcell2 mean);
              (if Float.is_nan p95 then "n/a" else Tbl.fcell2 p95);
              Printf.sprintf "%d/%d" disc total;
            ])
        [ ("LID (latency prefs)", lid.Owp_core.Lid.matching); ("random maximal", rnd) ])
    [ 2; 3; 5 ];
  [ t ]

let exp =
  {
    Exp_common.id = "E13";
    title = "Overlay path stretch";
    paper_ref = "§1 distance-metric scenario (extension)";
    run;
  }
