(* E5 — Lemma 5 (termination) and message complexity of LID.

   The paper proves LID always terminates; the interesting engineering
   quantities are how many PROP/REJ messages that takes.  Sweep n (at
   fixed average degree and quota) and quota b (at fixed n). *)

module Tbl = Owp_util.Tablefmt

let row t (inst : Workloads.instance) b =
  let r = Exp_common.run_lid inst in
  let n = Graph.node_count inst.graph and m = Graph.edge_count inst.graph in
  let total = r.Owp_core.Lid.prop_count + r.Owp_core.Lid.rej_count in
  Tbl.add_row t
    [
      Tbl.icell n;
      Tbl.icell m;
      Tbl.icell b;
      Tbl.icell r.Owp_core.Lid.prop_count;
      Tbl.icell r.Owp_core.Lid.rej_count;
      Tbl.fcell2 (float_of_int total /. float_of_int n);
      Tbl.fcell2 (float_of_int total /. float_of_int (max m 1));
      Tbl.icell r.Owp_core.Lid.dropped;
      Tbl.fcell2 r.Owp_core.Lid.completion_time;
      Exp_common.quiescence_cell r;
    ]

let run ~quick =
  let ns = if quick then [ 200; 1000 ] else [ 200; 1000; 5000; 20000 ] in
  let t1 =
    Tbl.create
      ~title:
        "E5a (Lemma 5): LID termination and message complexity vs n (avg deg 8, b = 3)"
      [
        ("n", Tbl.Right);
        ("m", Tbl.Right);
        ("b", Tbl.Right);
        ("PROP", Tbl.Right);
        ("REJ", Tbl.Right);
        ("msgs/node", Tbl.Right);
        ("msgs/edge", Tbl.Right);
        ("dropped", Tbl.Right);
        ("v-time", Tbl.Right);
        ("terminated", Tbl.Left);
      ]
  in
  List.iter
    (fun n ->
      let inst =
        Workloads.make ~seed:n ~family:(Workloads.Gnm_avg_deg 8.0)
          ~pref_model:Workloads.Random_prefs ~n ~quota:3
      in
      row t1 inst 3)
    ns;
  let t2 =
    Tbl.create
      ~title:"E5b: message complexity vs quota b (G(n,m) avg deg 12, n = 2000)"
      [
        ("n", Tbl.Right);
        ("m", Tbl.Right);
        ("b", Tbl.Right);
        ("PROP", Tbl.Right);
        ("REJ", Tbl.Right);
        ("msgs/node", Tbl.Right);
        ("msgs/edge", Tbl.Right);
        ("dropped", Tbl.Right);
        ("v-time", Tbl.Right);
        ("terminated", Tbl.Left);
      ]
  in
  let bs = if quick then [ 1; 4 ] else [ 1; 2; 4; 8; 12 ] in
  List.iter
    (fun b ->
      let inst =
        Workloads.make ~seed:(100 + b) ~family:(Workloads.Gnm_avg_deg 12.0)
          ~pref_model:Workloads.Random_prefs ~n:2000 ~quota:b
      in
      row t2 inst b)
    bs;
  (* E5c: the dropped column above is always 0 on a clean channel; under
     loss it shows exactly how much of the conversation went missing and
     why termination fails (the gap E21 closes with the transport) *)
  let t3 =
    Tbl.create
      ~title:"E5c: LID on a lossy channel (n = 500, avg deg 8, b = 3) — no recovery"
      [
        ("drop", Tbl.Right);
        ("PROP", Tbl.Right);
        ("REJ", Tbl.Right);
        ("dropped", Tbl.Right);
        ("terminated", Tbl.Left);
      ]
  in
  List.iter
    (fun drop ->
      let inst =
        Workloads.make ~seed:55 ~family:(Workloads.Gnm_avg_deg 8.0)
          ~pref_model:Workloads.Random_prefs ~n:500 ~quota:3
      in
      let faults = Owp_simnet.Simnet.faults ~drop () in
      let r =
        Owp_core.Lid.run ~seed:7 ~faults inst.Workloads.weights
          ~capacity:inst.Workloads.capacity
      in
      Tbl.add_row t3
        [
          Tbl.fcell2 drop;
          Tbl.icell r.Owp_core.Lid.prop_count;
          Tbl.icell r.Owp_core.Lid.rej_count;
          Tbl.icell r.Owp_core.Lid.dropped;
          Exp_common.quiescence_cell r;
        ])
    [ 0.0; 0.05; 0.2; 0.5 ];
  [ t1; t2; t3 ]

let exp =
  {
    Exp_common.id = "E5";
    title = "Termination and message complexity";
    paper_ref = "Lemma 5";
    run;
  }
