let all =
  [
    E00_workloads.exp;
    E01_figure1.exp;
    E02_lemma1.exp;
    E03_half_approx.exp;
    E04_equivalence.exp;
    E05_messages.exp;
    E06_theorem3.exp;
    E07_satisfaction.exp;
    E08_fixtures.exp;
    E09_privacy.exp;
    E10_churn.exp;
    E11_onetoone.exp;
    E12_ties.exp;
    E13_stretch.exp;
    E14_localsearch.exp;
    E15_robust.exp;
    E16_dynamic.exp;
    E17_floors.exp;
    E18_bipartite.exp;
    E19_anytime.exp;
    E20_coverage.exp;
    E21_reliable.exp;
    E22_byzantine.exp;
    E23_scale.exp;
    E24_composition.exp;
    E25_deadline.exp;
    E26_stabilize.exp;
    E27_serve.exp;
    E28_wheel.exp;
  ]

let find id =
  let id = String.lowercase_ascii id in
  List.find_opt (fun e -> String.lowercase_ascii e.Exp_common.id = id) all

let json_escape s =
  String.concat ""
    (List.map
       (function
         | '"' -> "\\\"" | '\\' -> "\\\\" | '\n' -> "\\n" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

(* one BENCH_<id>.json per experiment: metadata plus every table in
   Tablefmt's machine-readable form *)
let write_json dir (e : Exp_common.exp) tables =
  let path = Filename.concat dir ("BENCH_" ^ e.Exp_common.id ^ ".json") in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"id\": \"%s\",\n  \"title\": \"%s\",\n  \"paper_ref\": \"%s\",\n  \"tables\": [\n"
    (json_escape e.Exp_common.id) (json_escape e.Exp_common.title)
    (json_escape e.Exp_common.paper_ref);
  List.iteri
    (fun i t ->
      if i > 0 then output_string oc ",\n";
      output_string oc (Owp_util.Tablefmt.to_json t))
    tables;
  output_string oc "\n  ]\n}\n";
  close_out oc

let print_exp ?json_dir ~quick out (e : Exp_common.exp) =
  Format.fprintf out "%s@." (Exp_common.header e);
  let tables, wall_ms = Exp_common.time (fun () -> e.Exp_common.run ~quick) in
  List.iter (fun t -> Format.fprintf out "%s@." (Owp_util.Tablefmt.render t)) tables;
  Format.fprintf out "-- %s wall %.2f s (jobs %d)@." e.Exp_common.id (wall_ms /. 1000.0)
    !Exp_common.jobs;
  Option.iter (fun dir -> write_json dir e tables) json_dir

let run_all ?(quick = false) ?json_dir ~out () =
  List.iter (print_exp ?json_dir ~quick out) all

let run_one ?(quick = false) ?json_dir ~out id =
  match find id with
  | None -> false
  | Some e ->
      print_exp ?json_dir ~quick out e;
      true
