(* E23 — the scale engine: indexed LIC vs the reference selection, LID
   at size, and multicore sweep determinism.

   This experiment starts the repo's measured-performance trajectory
   (BENCH_E23.json).  Three tables:

   - E23a: LIC engines across sizes.  "reference" is Lic.run with the
     genuinely local Climbing rule, whose heaviest_rival rescans both
     endpoints' neighbour lists (O(Δ) per climb step); "sorted" is the
     centralized global-sort shortcut (Heaviest_first); "indexed" is
     Lic_indexed over per-node lazy-deletion heaps.  All three must lock
     the exact same edge set (Lemma 6); the speedup column is
     reference / indexed, the quantity the CI bench-smoke gates on.
   - E23b: LID at size — protocol messages, virtual completion time and
     simulator wall-clock, for the rounds/messages trajectory.
   - E23c: seed sweep through the Pool with --jobs 1 vs the configured
     job count; per-trial results must be bit-identical (deterministic
     per-trial PRNG streams), only the wall-clock may differ. *)

module Tbl = Owp_util.Tablefmt
module BM = Owp_matching.Bmatching
module Lic = Owp_core.Lic
module Lic_indexed = Owp_core.Lic_indexed
module Lid = Owp_core.Lid
module Pool = Owp_util.Pool

let instance ~seed ~n ~deg ~quota =
  Workloads.make ~seed ~family:(Workloads.Gnm_avg_deg deg)
    ~pref_model:Workloads.Random_prefs ~n ~quota

type lic_row = {
  n : int;
  m : int;
  reference_ms : float;
  sorted_ms : float;
  indexed_ms : float;
  identical : bool;
}

let speedup r = if r.indexed_ms <= 0.0 then infinity else r.reference_ms /. r.indexed_ms

(* Wall timings on shared CI boxes are noisy; best-of-two with a major
   collection between engines keeps one engine from paying the other's
   allocation debt and reports the repeatable floor, not the noise. *)
let time_best f =
  let measure () =
    (* collect first: freed pages from the previous run go back on the
       allocator's free list, so this run's arrays reuse them instead of
       page-faulting fresh mappings — that fault cost is the single
       largest noise source on the shared CI boxes *)
    Gc.full_major ();
    Exp_common.time f
  in
  let _, a = measure () in
  let r, b = measure () in
  (r, Float.min a b)

(* One size point of E23a; also the measurement behind the CI gate. *)
let measure_lic ~seed ~n ~deg ~quota =
  let inst = instance ~seed ~n ~deg ~quota in
  let w = inst.Workloads.weights and capacity = inst.Workloads.capacity in
  let reference, reference_ms =
    time_best (fun () -> Lic.run ~strategy:Lic.Climbing w ~capacity)
  in
  let sorted, sorted_ms = time_best (fun () -> Lic.run w ~capacity) in
  let indexed, indexed_ms = time_best (fun () -> Lic_indexed.run w ~capacity) in
  {
    n;
    m = Graph.edge_count inst.Workloads.graph;
    reference_ms;
    sorted_ms;
    indexed_ms;
    identical = BM.equal reference indexed && BM.equal sorted indexed;
  }

(* E23c trial: everything the run produced that could reveal a
   scheduling dependence — compared structurally across job counts *)
let sweep_trial ~n ~deg ~quota seed =
  let inst = instance ~seed ~n ~deg ~quota in
  let r = Lid.run ~seed inst.Workloads.weights ~capacity:inst.Workloads.capacity in
  ( seed,
    BM.edge_ids r.Lid.matching,
    r.Lid.prop_count,
    r.Lid.rej_count,
    r.Lid.completion_time )

(* the bit-identity gate: per-trial results must match across worker
   counts, including the virtual completion time, which is a float and
   therefore compared with Float.equal rather than polymorphic [=] *)
let trial_equal (s1, e1, p1, r1, t1) (s2, e2, p2, r2, t2) =
  s1 = s2 && e1 = e2 && p1 = p2 && r1 = r2 && Float.equal t1 t2

let sweeps_identical a b =
  Array.length a = Array.length b && Array.for_all2 trial_equal a b

let run ~quick =
  (* avg degree 48, quota 8: wide neighbour lists and a realistic
     overlay fan-out put the run in the regime the scale engine exists
     for — the reference's O(Δ) rescans dominate (and grow with the
     number of selections) while the indexed engine's O(log Δ) heap
     work barely moves *)
  let deg = 48.0 and quota = 8 in
  let sizes = if quick then [ 10_000; 30_000 ] else [ 10_000; 100_000; 1_000_000 ] in
  let lid_cap = if quick then 30_000 else 100_000 in

  (* E23a: LIC engines ------------------------------------------------- *)
  let t1 =
    Tbl.create
      ~title:
        (Printf.sprintf
           "E23a: LIC selection engines (G(n,m) avg deg %.0f, b = %d; reference = \
            Climbing rescans, indexed = per-node heaps)"
           deg quota)
      [
        ("n", Tbl.Right);
        ("m", Tbl.Right);
        ("reference ms", Tbl.Right);
        ("sorted ms", Tbl.Right);
        ("indexed ms", Tbl.Right);
        ("speedup", Tbl.Right);
        ("same edges", Tbl.Left);
      ]
  in
  let lid_rows = ref [] in
  List.iter
    (fun n ->
      (* the 10^6-node point keeps the edge count (not the density)
         growing: deg 8 halves memory pressure at that size *)
      let deg = if n >= 1_000_000 then 8.0 else deg in
      let r = measure_lic ~seed:23 ~n ~deg ~quota in
      Tbl.add_row t1
        [
          Tbl.icell r.n;
          Tbl.icell r.m;
          Tbl.fcell2 r.reference_ms;
          Tbl.fcell2 r.sorted_ms;
          Tbl.fcell2 r.indexed_ms;
          Printf.sprintf "%.1fx" (speedup r);
          (if r.identical then "yes" else "NO");
        ];
      if n <= lid_cap then begin
        (* E23b tracks protocol cost vs n, not density: moderate degree
           keeps the simulated network affordable at 10^5 nodes *)
        let inst = instance ~seed:23 ~n ~deg:16.0 ~quota in
        let lid, wall =
          Exp_common.time (fun () ->
              Exp_common.run_lid inst)
        in
        lid_rows := (n, lid, wall) :: !lid_rows
      end)
    sizes;

  (* E23b: LID at size -------------------------------------------------- *)
  let t2 =
    Tbl.create ~title:"E23b: LID protocol cost at size (simulated network)"
      [
        ("n", Tbl.Right);
        ("PROP", Tbl.Right);
        ("REJ", Tbl.Right);
        ("msgs/node", Tbl.Right);
        ("v-time", Tbl.Right);
        ("sim wall ms", Tbl.Right);
        ("quiesced", Tbl.Left);
      ]
  in
  List.iter
    (fun (n, (r : Owp_core.Lid.report), wall) ->
      Tbl.add_row t2
        [
          Tbl.icell n;
          Tbl.icell r.Lid.prop_count;
          Tbl.icell r.Lid.rej_count;
          Tbl.fcell2 (float_of_int (r.Lid.prop_count + r.Lid.rej_count) /. float_of_int n);
          Tbl.fcell2 r.Lid.completion_time;
          Tbl.fcell2 wall;
          Exp_common.quiescence_cell r;
        ])
    (List.rev !lid_rows);

  (* E23c: multicore sweep determinism ----------------------------------- *)
  let jobs = max 2 !Exp_common.jobs in
  let seeds = Array.init (if quick then 8 else 16) (fun i -> 100 + i) in
  let sweep_n = if quick then 2_000 else 5_000 in
  let trial = sweep_trial ~n:sweep_n ~deg:8.0 ~quota in
  let serial, serial_ms =
    Exp_common.time (fun () -> Pool.map ~jobs:1 trial seeds)
  in
  let parallel, parallel_ms =
    Exp_common.time (fun () -> Pool.map ~jobs trial seeds)
  in
  let t3 =
    Tbl.create
      ~title:
        (Printf.sprintf
           "E23c: seed sweep through the worker pool (%d LID trials, n = %d)"
           (Array.length seeds) sweep_n)
      [
        ("jobs", Tbl.Right);
        ("wall ms", Tbl.Right);
        ("trials", Tbl.Right);
        ("identical to --jobs 1", Tbl.Left);
      ]
  in
  Tbl.add_row t3 [ "1"; Tbl.fcell2 serial_ms; Tbl.icell (Array.length seeds); "-" ];
  Tbl.add_row t3
    [
      Tbl.icell jobs;
      Tbl.fcell2 parallel_ms;
      Tbl.icell (Array.length parallel);
      (if sweeps_identical parallel serial then "yes" else "NO");
    ];
  [ t1; t2; t3 ]

(* CI bench-smoke entry: small enough for a PR gate, large enough that
   the asymptotics (not constant factors) decide *)
type smoke = {
  reference_ms : float;
  indexed_ms : float;
  identical : bool;
  jobs_deterministic : bool;
}

let smoke ?(n = 20_000) ~jobs () =
  let r = measure_lic ~seed:23 ~n ~deg:48.0 ~quota:8 in
  let seeds = Array.init 6 (fun i -> 100 + i) in
  let trial = sweep_trial ~n:1_000 ~deg:8.0 ~quota:3 in
  let serial = Pool.map ~jobs:1 trial seeds in
  let parallel = Pool.map ~jobs:(max 2 jobs) trial seeds in
  {
    reference_ms = r.reference_ms;
    indexed_ms = r.indexed_ms;
    identical = r.identical;
    jobs_deterministic = sweeps_identical parallel serial;
  }

let exp =
  {
    Exp_common.id = "E23";
    title = "Scale engine: indexed LIC, LID at size, multicore sweep determinism";
    paper_ref = "Lemma 6 + scaling (arXiv:2410.09965, arXiv:0812.4893)";
    run;
  }
