(** Chaos engine: randomized fault schedules, run through the full
    stack composition, with delta-debugging shrinking of failures.

    [owp chaos] is a property test over network weather: generate a
    seeded random {!Owp_simnet.Schedule.t} against an instance, run the
    configured composition (faults, transport, adversaries, guard —
    whatever the {!Owp_core.Run_config.t} says), and demand the
    {!Owp_check.Stabilize} certificate.  When a schedule breaks the
    certificate, the interesting artifact is not the failure but the
    {e smallest} failure: {!shrink} minimizes the schedule
    delta-debugging-style — drop whole episodes, halve durations, merge
    partition blocks, thin link and node lists — re-running the
    composition at each step, until a fixpoint no single reduction
    escapes.  The result prints as a [--schedule] spec, ready to
    reproduce with [owp run]. *)

type result = {
  passed : bool;
      (** certificate gate: in adversary-free configs the stabilization
          certificate must certify; under adversaries the damage
          certificate is the gate and stabilization is informational *)
  summary : string;  (** one line: gate verdicts and recovery time *)
  certificate : string option;
      (** rendered stabilization certificate, when the run produced one *)
}

val run_one : Owp_core.Run_config.t -> Preference.t -> Owp_simnet.Schedule.t -> result
(** Run the config's composition with its schedule replaced by the
    given one. *)

val generate :
  Owp_util.Prng.t ->
  graph:Graph.t ->
  horizon:float ->
  max_episodes:int ->
  Owp_simnet.Schedule.t
(** A random valid schedule: 1..[max_episodes] episodes of random kind
    (partition, link-down, flap, burst, down) over random sub-intervals
    of [[0, horizon]]; links are sampled from the graph's edges so
    episodes bite, and down victims are kept disjoint so the schedule
    validates. *)

val shrink :
  ?budget:int ->
  fails:(Owp_simnet.Schedule.t -> bool) ->
  Owp_simnet.Schedule.t ->
  Owp_simnet.Schedule.t
(** Precondition: [fails s].  Returns a schedule that still fails and
    from which no single episode drop, duration halving, block merge or
    list thinning yields a failing schedule (or the re-run [budget],
    default 200, ran out).  Every candidate is checked with [fails]
    before being adopted, so the result is always a true reproducer. *)

type fuzz_report = {
  trials_run : int;
  failure : (int * Owp_simnet.Schedule.t * Owp_simnet.Schedule.t) option;
      (** [(trial index, original schedule, shrunk reproducer)] of the
          first failing trial; [None] when every trial certified *)
}

val fuzz :
  ?trials:int ->
  ?max_episodes:int ->
  ?horizon:float ->
  seed:int ->
  Owp_core.Run_config.t ->
  Preference.t ->
  fuzz_report
(** The fuzz loop: [trials] (default 20) generated schedules (seeded,
    deterministic), stopping at the first failure and shrinking it. *)
