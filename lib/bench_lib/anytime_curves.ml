(* Shared instrumentation for the anytime experiments (E19, E25): run
   the layered stack once per budget and measure the served prefix
   against the unbudgeted reference through the Anytime certificate
   checker, so the experiment tables and the `owp run --deadline` CLI
   path exercise one code path instead of two bespoke probes. *)

module Stack = Owp_core.Stack
module A = Owp_check.Anytime
module BM = Owp_matching.Bmatching

type point = {
  budget : float;
  satisfaction : float;  (* total satisfaction of the served matching *)
  retained : float;  (* satisfaction ratio vs the full run, in [0,1] *)
  weight_retained : float;
  blocking_pairs : int;
  served_edges : int;
  certified : bool;  (* feasible and a prefix of the full run *)
}

(* [curve ~prefs ~weights ~capacity ~budgets run] calls [run None] once
   for the unbudgeted reference (returned alongside the points so
   callers can report its completion time) and [run (Some b)] per
   budget; the closure owns every layer flag so one helper serves
   plain, faulty, reliable and guarded-Byzantine stacks alike. *)
let curve ~prefs ~weights ~capacity ~budgets (run : float option -> Stack.report) =
  let full = run None in
  let reference = BM.edge_ids full.Stack.matching in
  ( full,
    List.map
      (fun budget ->
        let r = run (Some budget) in
        let cert =
          A.check
            (A.instance ~prefs ~reference weights ~capacity ~budget
               ~edges:(BM.edge_ids r.Stack.matching))
        in
        {
          budget;
          satisfaction = Option.value cert.A.satisfaction ~default:0.0;
          retained = Option.value cert.A.satisfaction_retained ~default:1.0;
          weight_retained = Option.value cert.A.weight_retained ~default:1.0;
          blocking_pairs = cert.A.blocking_pairs;
          served_edges = cert.A.matched_edges;
          certified = A.certified cert;
        })
      budgets )

(* satisfaction non-decreasing along the budget axis, up to float noise:
   the graceful-degradation claim E25 gates on *)
let monotone points =
  let rec go = function
    | a :: (b :: _ as rest) -> a.retained <= b.retained +. 1e-9 && go rest
    | _ -> true
  in
  go points

let all_certified points = List.for_all (fun p -> p.certified) points

(* largest satisfaction jump between adjacent budgets — the "cliff"
   statistic: graceful curves keep it well below the whole payoff *)
let max_step points =
  let rec go acc = function
    | a :: (b :: _ as rest) -> go (Float.max acc (b.retained -. a.retained)) rest
    | _ -> acc
  in
  go 0.0 points
