(* E3 — Theorem 2: LIC/LID are ½-approximations of the maximum-weight
   many-to-many matching.

   Small instances are compared against the exact branch-and-bound
   optimum; larger instances against the paper's own comparator (global
   greedy) plus the structural certificate (maximality + greedy
   stability) that the charging argument of Theorem 2 needs. *)

module Tbl = Owp_util.Tablefmt
module BM = Owp_matching.Bmatching

let small_table ~quick =
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let t =
    Tbl.create
      ~title:
        "E3a (Theorem 2): LIC weight vs exact optimum on small instances (bound = 0.5)"
      [
        ("instance", Tbl.Left);
        ("m", Tbl.Right);
        ("b", Tbl.Right);
        ("w(LIC)", Tbl.Right);
        ("w(OPT)", Tbl.Right);
        ("ratio", Tbl.Right);
        (">= 0.5", Tbl.Left);
      ]
  in
  let ratios = ref [] in
  List.iter
    (fun quota ->
      let instances = Workloads.small_instances ~seeds ~n:9 ~quota in
      List.iter
        (fun (inst : Workloads.instance) ->
          let m = Graph.edge_count inst.graph in
          if m <= 36 then begin
            let lic = Exp_common.run_lic inst in
            let opt =
              Owp_matching.Exact.max_weight_bmatching ~max_edges:36 inst.weights
                ~capacity:inst.capacity
            in
            let wl = BM.weight lic inst.weights and wo = BM.weight opt inst.weights in
            let ratio = if Float.equal wo 0.0 then 1.0 else wl /. wo in
            ratios := ratio :: !ratios;
            Tbl.add_row t
              [
                inst.label;
                Tbl.icell m;
                Tbl.icell quota;
                Tbl.fcell wl;
                Tbl.fcell wo;
                Tbl.fcell ratio;
                (if ratio >= 0.5 -. 1e-9 then "yes" else "VIOLATED");
              ]
          end)
        instances)
    [ 1; 2; 3 ];
  let summary =
    Tbl.create
      [ ("aggregate", Tbl.Left); ("value", Tbl.Right) ]
  in
  Tbl.add_row summary [ "instances"; Tbl.icell (List.length !ratios) ];
  Tbl.add_row summary [ "mean ratio"; Tbl.fcell (Exp_common.mean !ratios) ];
  Tbl.add_row summary [ "min ratio"; Tbl.fcell (Exp_common.minimum !ratios) ];
  Tbl.add_row summary [ "proven bound"; "0.5000" ];
  (t, summary)

let large_table ~quick =
  let ns = if quick then [ 500 ] else [ 500; 2000; 8000 ] in
  let t =
    Tbl.create
      ~title:
        "E3b: certificate + greedy comparison at scale (LIC vs global greedy; both greedy-stable)"
      [
        ("family", Tbl.Left);
        ("n", Tbl.Right);
        ("b", Tbl.Right);
        ("w(LIC)/w(greedy)", Tbl.Right);
        ("maximal", Tbl.Left);
        ("greedy-stable", Tbl.Left);
      ]
  in
  List.iter
    (fun family ->
      List.iter
        (fun n ->
          let inst =
            Workloads.make ~seed:(7 * n) ~family ~pref_model:Workloads.Random_prefs ~n
              ~quota:4
          in
          let lic = Exp_common.run_lic inst in
          let greedy = Exp_common.run_greedy inst in
          let r =
            let wg = BM.weight greedy inst.weights in
            if Float.equal wg 0.0 then 1.0 else BM.weight lic inst.weights /. wg
          in
          Tbl.add_row t
            [
              Workloads.family_name family;
              Tbl.icell n;
              "4";
              Tbl.fcell r;
              (if BM.is_maximal lic then "yes" else "no");
              (if Owp_core.Theory.is_greedy_stable inst.weights lic then "yes" else "no");
            ])
        ns)
    Workloads.standard_families;
  t

(* The ratio ½ is asymptotically tight: on a 3-edge path with weights
   (1, 1+eps, 1) the locally heaviest middle edge blocks both light
   ones, so LIC earns 1+eps while the optimum earns 2.  Many disjoint
   copies keep the ratio global. *)
let tightness_table () =
  let t =
    Tbl.create
      ~title:
        "E3c (tightness): adversarial path gadgets — LIC/OPT approaches 0.5 as eps -> 0"
      [
        ("eps", Tbl.Right);
        ("gadgets", Tbl.Right);
        ("w(LIC)", Tbl.Right);
        ("w(OPT)", Tbl.Right);
        ("ratio", Tbl.Right);
      ]
  in
  List.iter
    (fun eps ->
      let gadgets = 50 in
      let b = Graph.Builder.create (4 * gadgets) in
      for k = 0 to gadgets - 1 do
        let base = 4 * k in
        ignore (Graph.Builder.add_edge b base (base + 1));
        ignore (Graph.Builder.add_edge b (base + 1) (base + 2));
        ignore (Graph.Builder.add_edge b (base + 2) (base + 3))
      done;
      let g = Graph.Builder.build b in
      let weights =
        Weights.of_array g
          (Array.init (Graph.edge_count g) (fun e ->
               if e mod 3 = 1 then 1.0 +. eps else 1.0))
      in
      let capacity = Array.make (Graph.node_count g) 1 in
      let lic = Owp_core.Lic.run weights ~capacity in
      let opt =
        (* the optimum on this gadget family is the light edges: 2/gadget *)
        2.0 *. float_of_int gadgets
      in
      let wl = BM.weight lic weights in
      Tbl.add_row t
        [
          Printf.sprintf "%.3f" eps;
          Tbl.icell gadgets;
          Tbl.fcell wl;
          Tbl.fcell opt;
          Tbl.fcell (wl /. opt);
        ])
    [ 0.5; 0.1; 0.01; 0.001 ];
  t

let run ~quick =
  let a, s = small_table ~quick in
  [ a; s; large_table ~quick; tightness_table () ]

let exp =
  {
    Exp_common.id = "E3";
    title = "Half-approximation of max-weight matching";
    paper_ref = "Theorem 2, Lemmas 3/4/6";
    run;
  }
