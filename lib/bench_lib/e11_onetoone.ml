(* E11 — unit-quota cross-check: with b = 1 the problem is classic
   maximum weighted matching and LIC/LID coincide with the locally
   heaviest edge algorithms from the literature (Preis; Hoepman's
   distributed variant).  Compare against path-growing and the exact
   optimum on small graphs. *)

module Tbl = Owp_util.Tablefmt
module BM = Owp_matching.Bmatching
module One = Owp_matching.Onetoone

let run ~quick =
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3; 4; 5 ] in
  let t =
    Tbl.create
      ~title:"E11: one-to-one specialisation (b = 1), weight ratio vs exact optimum"
      [
        ("instance", Tbl.Left);
        ("LIC=Preis?", Tbl.Left);
        ("LID/opt", Tbl.Right);
        ("Preis/opt", Tbl.Right);
        ("path-growing/opt", Tbl.Right);
        ("greedy/opt", Tbl.Right);
      ]
  in
  List.iter
    (fun seed ->
      let inst =
        Workloads.make ~seed ~family:(Workloads.Gnp 0.4)
          ~pref_model:Workloads.Random_prefs ~n:10 ~quota:1
      in
      if Graph.edge_count inst.graph <= 30 then begin
        let opt =
          Owp_matching.Exact.max_weight_bmatching ~max_edges:30 inst.weights
            ~capacity:inst.capacity
        in
        let wopt = BM.weight opt inst.weights in
        let ratio m = if Float.equal wopt 0.0 then 1.0 else BM.weight m inst.weights /. wopt in
        let lid = (Exp_common.run_lid inst).Owp_core.Lid.matching in
        let lic = Exp_common.run_lic inst in
        let preis = One.preis inst.weights in
        let pg = One.path_growing inst.weights in
        let greedy = One.global_greedy inst.weights in
        Tbl.add_row t
          [
            inst.label;
            (if BM.equal lic preis then "yes" else "no");
            Tbl.fcell (ratio lid);
            Tbl.fcell (ratio preis);
            Tbl.fcell (ratio pg);
            Tbl.fcell (ratio greedy);
          ]
      end)
    seeds;
  (* distributed one-to-one protocols head-to-head: Hoepman's REQ/DROP
     vs LID at b = 1 — same edge set, different message bills *)
  let t2 =
    Tbl.create
      ~title:"E11b: distributed protocols at b = 1 — LID vs Hoepman (ref [6])"
      [
        ("n", Tbl.Right);
        ("m", Tbl.Right);
        ("same edge set", Tbl.Left);
        ("LID msgs", Tbl.Right);
        ("Hoepman msgs", Tbl.Right);
        ("LID v-time", Tbl.Right);
        ("Hoepman v-time", Tbl.Right);
      ]
  in
  let sizes = if quick then [ 200 ] else [ 200; 1000; 4000 ] in
  List.iter
    (fun n ->
      let inst =
        Workloads.make ~seed:n ~family:(Workloads.Gnm_avg_deg 8.0)
          ~pref_model:Workloads.Random_prefs ~n ~quota:1
      in
      let lid = Exp_common.run_lid inst in
      let hoep = Owp_core.Hoepman.run ~seed:(n + 1) inst.weights in
      Tbl.add_row t2
        [
          Tbl.icell n;
          Tbl.icell (Graph.edge_count inst.graph);
          (if BM.equal lid.Owp_core.Lid.matching hoep.Owp_core.Hoepman.matching then "yes"
           else "no");
          Tbl.icell (lid.Owp_core.Lid.prop_count + lid.Owp_core.Lid.rej_count);
          Tbl.icell
            (hoep.Owp_core.Hoepman.req_count + hoep.Owp_core.Hoepman.drop_count);
          Tbl.fcell2 lid.Owp_core.Lid.completion_time;
          Tbl.fcell2 hoep.Owp_core.Hoepman.completion_time;
        ])
    sizes;
  [ t; t2 ]

let exp =
  {
    Exp_common.id = "E11";
    title = "One-to-one baselines";
    paper_ref = "§1 related work [6,14,16]";
    run;
  }
