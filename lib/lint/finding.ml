type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

let v ~rule ~file ~loc message =
  let p = loc.Location.loc_start in
  {
    rule;
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    message;
  }

let order a b =
  let c = compare a.file b.file in
  if c <> 0 then c
  else
    let c = compare (a.line, a.col) (b.line, b.col) in
    if c <> 0 then c
    else
      let c = compare a.rule b.rule in
      if c <> 0 then c else compare a.message b.message

let pp ppf t =
  Format.fprintf ppf "%s:%d:%d [%s] %s" t.file t.line t.col t.rule t.message

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let to_json t =
  Printf.sprintf "{\"rule\": %s, \"file\": %s, \"line\": %d, \"col\": %d, \"message\": %s}"
    (json_string t.rule) (json_string t.file) t.line t.col (json_string t.message)
