let all =
  [
    Rules_purity.rule;
    Rules_order.rule;
    Rules_clock.rule;
    Rules_random.rule;
    Rules_float.rule;
    Rules_pool.rule;
    Rules_protocol.state_machine;
    Rules_protocol.layer_conformance;
  ]

let names = List.map (fun r -> r.Rule.name) all
let find name = List.find_opt (fun r -> r.Rule.name = name) all
