type unit_info = {
  module_name : string;
  file : string;
  basename : string;
  source : string option;
  structure : Typedtree.structure;
}

(* deterministic recursive walk: readdir order is unspecified, so sort *)
let rec walk dir acc =
  match Sys.readdir dir with
  | entries ->
      Array.sort compare entries;
      Array.fold_left
        (fun acc entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then walk path acc
          else if Filename.check_suffix entry ".cmt" then path :: acc
          else acc)
        acc entries
  | exception Sys_error _ -> acc

let read_one path =
  match Cmt_format.read_cmt path with
  | { Cmt_format.cmt_annots = Cmt_format.Implementation structure;
      cmt_modname;
      cmt_sourcefile;
      cmt_builddir;
      _;
    } ->
      let file = Option.value ~default:(Filename.basename path) cmt_sourcefile in
      let source =
        match cmt_sourcefile with
        | None -> None
        | Some rel ->
            (* the recorded builddir may be a sandbox path that no longer
               exists (dune records /workspace_root); the copy dune makes
               next to the .objs directory is always there, three levels
               up from <dir>/.<lib>.objs/byte/<unit>.cmt *)
            let near_objs =
              Filename.concat
                (Filename.dirname (Filename.dirname (Filename.dirname path)))
                (Filename.basename rel)
            in
            List.find_opt Sys.file_exists
              [ Filename.concat cmt_builddir rel; rel; near_objs ]
      in
      Some
        {
          module_name = cmt_modname;
          file;
          basename = Filename.basename file;
          source;
          structure;
        }
  | _ -> None
  | exception _ -> None

let scan roots =
  List.concat_map (fun root -> walk root []) roots
  |> List.filter_map read_one
  |> List.sort_uniq (fun a b ->
         let c = compare a.file b.file in
         if c <> 0 then c else compare a.module_name b.module_name)
