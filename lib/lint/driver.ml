type result = {
  findings : Finding.t list;
  suppressed : Finding.t list;
  files : int;
  rules : string list;
}

let select only =
  match only with
  | None -> Ok Registry.all
  | Some names -> (
      let missing = List.filter (fun n -> Registry.find n = None) names in
      match missing with
      | [] -> Ok (List.filter (fun r -> List.mem r.Rule.name names) Registry.all)
      | m ->
          Error
            (Printf.sprintf "unknown rule%s: %s (try `owp lint --list')"
               (if List.length m > 1 then "s" else "")
               (String.concat ", " m)))

let run ?only ~roots () =
  match select only with
  | Error _ as e -> e
  | Ok rules -> (
      match Cmt_load.scan roots with
      | [] ->
          Error
            (Printf.sprintf
               "no .cmt files under %s; run `dune build' first"
               (String.concat ", " roots))
      | units ->
          let univ =
            Rule.universe
              (List.map
                 (fun (u : Cmt_load.unit_info) -> (u.module_name, u.structure))
                 units)
          in
          let findings = ref [] and suppressed = ref [] in
          List.iter
            (fun (u : Cmt_load.unit_info) ->
              let sup =
                match u.Cmt_load.source with
                | Some src -> Suppress.load src
                | None -> Suppress.empty
              in
              let ctx =
                {
                  Rule.module_name = u.Cmt_load.module_name;
                  file = u.Cmt_load.file;
                  basename = u.Cmt_load.basename;
                  structure = u.Cmt_load.structure;
                  pure = Suppress.pure sup;
                  univ;
                }
              in
              List.iter
                (fun r ->
                  List.iter
                    (fun (f : Finding.t) ->
                      if Suppress.active sup ~rule:f.Finding.rule ~line:f.Finding.line
                      then suppressed := f :: !suppressed
                      else findings := f :: !findings)
                    (r.Rule.check ctx))
                rules)
            units;
          Ok
            {
              findings = List.sort Finding.order !findings;
              suppressed = List.sort Finding.order !suppressed;
              files = List.length units;
              rules = List.map (fun r -> r.Rule.name) rules;
            })

let pp_human ppf r =
  List.iter (fun f -> Format.fprintf ppf "%a@." Finding.pp f) r.findings;
  if r.findings <> [] then Format.fprintf ppf "@.";
  Format.fprintf ppf "%d finding%s (%d suppressed), %d file%s, %d rule%s@."
    (List.length r.findings)
    (if List.length r.findings = 1 then "" else "s")
    (List.length r.suppressed) r.files
    (if r.files = 1 then "" else "s")
    (List.length r.rules)
    (if List.length r.rules = 1 then "" else "s")

let to_json r =
  let b = Buffer.create 1024 in
  let list_of f xs = "[" ^ String.concat ", " (List.map f xs) ^ "]" in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf "  \"findings\": %s,\n" (list_of Finding.to_json r.findings));
  Buffer.add_string b
    (Printf.sprintf "  \"suppressed\": %s,\n"
       (list_of Finding.to_json r.suppressed));
  Buffer.add_string b (Printf.sprintf "  \"files\": %d,\n" r.files);
  Buffer.add_string b
    (Printf.sprintf "  \"rules\": %s\n" (list_of Finding.json_string r.rules));
  Buffer.add_string b "}";
  Buffer.contents b
