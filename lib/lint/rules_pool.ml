(* pool-capture: closures handed to Owp_util.Pool run concurrently on
   OCaml 5 domains, and the pool's bit-identity guarantee holds only
   because tasks share no mutable state.  This is a lightweight race
   lint, not a proof: it inspects closure literals passed to
   Pool.map/map_list/run and flags writes (:=, incr, Hashtbl/Array/
   Bytes/Buffer mutation, field assignment) whose target is defined
   outside the closure.  Locally created state is fine — each task may
   scribble on its own accumulator — and Atomic operations are the
   sanctioned cross-task channel. *)

let name = "pool-capture"
let pool_entries = [ "Pool.map"; "Pool.map_list"; "Pool.run" ]

let mutators =
  [
    [ ":=" ]; [ "incr" ]; [ "decr" ];
    [ "Hashtbl"; "add" ]; [ "Hashtbl"; "replace" ]; [ "Hashtbl"; "remove" ];
    [ "Hashtbl"; "reset" ]; [ "Hashtbl"; "clear" ];
    [ "Array"; "set" ]; [ "Array"; "unsafe_set" ]; [ "Array"; "fill" ];
    [ "Array"; "blit" ]; [ "Bytes"; "set" ]; [ "Bytes"; "unsafe_set" ];
    [ "Buffer"; "add_string" ]; [ "Buffer"; "add_char" ]; [ "Buffer"; "clear" ];
    [ "Buffer"; "reset" ]; [ "Queue"; "push" ]; [ "Queue"; "pop" ];
    [ "Queue"; "add" ]; [ "Queue"; "take" ]; [ "Stack"; "push" ];
    [ "Stack"; "pop" ];
  ]

(* An event wheel is single-owner mutable state: one captured into a
   Pool task races exactly like a shared Hashtbl.  The sharded
   simulator's contract is that each task touches its OWN shard, so
   add/pop/pop_into on a wheel defined outside the closure is flagged;
   [prepare] stays legal — it is the one operation prepare_all hands to
   the pool by design, and it only ripens the shard it is given.
   Matched by tail (Module.fn) so the alias path Owp_util.Event_wheel
   and in-library Event_wheel both hit. *)
let wheel_mutators =
  [ "Event_wheel.add"; "Event_wheel.pop"; "Event_wheel.pop_into" ]

(* the write target is safe when it is an identifier whose definition
   site lies inside the closure (a local accumulator or a parameter) *)
let target_is_local closure_loc (arg : Typedtree.expression option) =
  match arg with
  | Some a -> (
      match Rule.ident_of a with
      | Some (_, vd) -> Rule.loc_inside vd.Types.val_loc closure_loc
      | None -> false)
  | None -> false

let check (ctx : Rule.context) =
  if ctx.Rule.basename = "pool.ml" then []
  else begin
    let out = ref [] in
    let add loc what =
      out :=
        Finding.v ~rule:name ~file:ctx.Rule.file ~loc
          (Printf.sprintf
             "closure passed to Owp_util.Pool mutates `%s' defined outside \
              the task; route cross-task state through Atomic or return it"
             what)
        :: !out
    in
    let scan_closure (closure : Typedtree.expression) =
      let cloc = closure.Typedtree.exp_loc in
      Rule.iter_expr_within closure (fun e ->
          match e.Typedtree.exp_desc with
          | Typedtree.Texp_setfield (target, _, _, _) -> (
              match Rule.ident_of target with
              | Some (p, vd) when not (Rule.loc_inside vd.Types.val_loc cloc) ->
                  add e.Typedtree.exp_loc
                    (String.concat "." (Rule.stdlib_head (Rule.path_parts p)))
              | Some _ -> ()
              | None -> ())
          | Typedtree.Texp_apply (f, args) -> (
              match Rule.head_ident f with
              | Some p
                when (let parts = Rule.stdlib_head (Rule.path_parts p) in
                      List.mem parts mutators
                      || List.mem (Rule.tail_name parts) wheel_mutators) ->
                  let first_positional =
                    List.find_map
                      (fun (lbl, a) ->
                        match lbl with Asttypes.Nolabel -> a | _ -> None)
                      args
                  in
                  if not (target_is_local cloc first_positional) then
                    add e.Typedtree.exp_loc
                      (match first_positional with
                      | Some a -> (
                          match Rule.ident_of a with
                          | Some (tp, _) ->
                              String.concat "."
                                (Rule.stdlib_head (Rule.path_parts tp))
                          | None -> "shared state")
                      | None -> "shared state")
              | _ -> ())
          | _ -> ())
    in
    Rule.iter_expressions ctx.Rule.structure (fun e ->
        match e.Typedtree.exp_desc with
        | Typedtree.Texp_apply (f, args) -> (
            match Rule.head_ident f with
            | Some p
              when List.mem
                     (Rule.tail_name (Rule.stdlib_head (Rule.path_parts p)))
                     pool_entries ->
                List.iter
                  (fun (_, a) ->
                    match a with
                    | Some (a : Typedtree.expression) -> (
                        match a.Typedtree.exp_desc with
                        | Typedtree.Texp_function _ -> scan_closure a
                        | Typedtree.Texp_array elts -> List.iter scan_closure elts
                        | _ -> ())
                    | None -> ())
                  args
            | _ -> ())
        | _ -> ());
    List.rev !out
  end

let rule =
  {
    Rule.name;
    doc =
      "closures passed to Owp_util.Pool must not mutate state captured from \
       outside the task unless it is routed through Atomic (lightweight race \
       lint)";
    check;
  }
