(** Running the analyzer: scan [.cmt] roots, build the cross-unit type
    universe, run every (or a selected subset of) rule over every unit,
    and partition the findings against the suppression directives found
    in the sources. *)

type result = {
  findings : Finding.t list;  (** unsuppressed, sorted *)
  suppressed : Finding.t list;  (** matched an [allow] directive *)
  files : int;  (** implementation units analyzed *)
  rules : string list;  (** rules that ran *)
}

val run :
  ?only:string list -> roots:string list -> unit -> (result, string) Stdlib.result
(** [run ~roots ()] analyzes every unit under [roots].  [only] restricts
    to the named rules.  Errors: an unknown rule name in [only], or no
    [.cmt] files under any root (almost always a missing [dune build]). *)

val pp_human : Format.formatter -> result -> unit
(** Findings one per line plus a summary tail. *)

val to_json : result -> string
(** The full report as one JSON object (stable field order). *)
