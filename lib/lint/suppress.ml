type t = { pure : bool; allows : (int * string) list }

let empty = { pure = false; allows = [] }
let magic = "owp-lint:"

(* the directive body runs from after the marker to the comment
   terminator (or end of line), and rule names are the leading
   alphanumeric-dash words; anything after them is free-form reason *)
let directive_body line =
  match String.index_opt line 'o' with
  | None -> None
  | Some _ -> (
      let ll = String.length line and lm = String.length magic in
      let rec find i =
        if i + lm > ll then None
        else if String.sub line i lm = magic then Some (i + lm)
        else find (i + 1)
      in
      match find 0 with
      | None -> None
      | Some start ->
          let stop =
            let rec close i =
              if i + 1 >= ll then ll
              else if line.[i] = '*' && line.[i + 1] = ')' then i
              else close (i + 1)
            in
            close start
          in
          Some (String.sub line start (stop - start)))

let rule_word w =
  let w = String.trim w in
  let ok c = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-' in
  if w <> "" && String.for_all ok w then Some w else None

let parse_line acc lineno line =
  match directive_body line with
  | None -> acc
  | Some body -> (
      let words =
        String.split_on_char ' ' (String.map (fun c -> if c = ',' then ' ' else c) body)
        |> List.filter (fun w -> String.trim w <> "")
      in
      match words with
      | "pure" :: _ -> { acc with pure = true }
      | "allow" :: rest ->
          let rec take acc = function
            | w :: tl -> (
                match rule_word w with Some r -> take (r :: acc) tl | None -> acc)
            | [] -> acc
          in
          let rules = take [] rest in
          {
            acc with
            allows = List.map (fun r -> (lineno, r)) rules @ acc.allows;
          }
      | _ -> acc)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text ->
      let acc = ref empty and lineno = ref 0 in
      List.iter
        (fun line ->
          incr lineno;
          acc := parse_line !acc !lineno line)
        (String.split_on_char '\n' text);
      !acc
  | exception Sys_error _ -> empty

let pure t = t.pure

let active t ~rule ~line =
  List.exists (fun (l, r) -> r = rule && (l = line || l = line - 1)) t.allows

let markers t = List.length t.allows
