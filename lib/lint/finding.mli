(** One lint finding: the static-analysis analogue of
    {!Owp_check.Violation} — a rule name, a source position, and a
    one-line message.  Findings are value-comparable and sorted by
    position so reports are deterministic. *)

type t = {
  rule : string;
  file : string;  (** display path, e.g. ["lib/core/lid.ml"] *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler diagnostics *)
  message : string;
}

val v : rule:string -> file:string -> loc:Location.t -> string -> t
(** Build a finding anchored at [loc.loc_start]. *)

val order : t -> t -> int
(** Sort key: file, line, column, rule, message. *)

val pp : Format.formatter -> t -> unit
(** ["file:line:col [rule] message"]. *)

val to_json : t -> string
(** One JSON object with [rule]/[file]/[line]/[col]/[message] fields. *)

val json_string : string -> string
(** JSON string literal with the usual escapes (shared with the report
    serialiser). *)
