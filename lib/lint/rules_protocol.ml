(* The two repo-structural rules: the single-state-machine property the
   stack refactor established, and the layer-signature conformance the
   counter table relies on. *)

(* ------------------------------------------------------------------ *)
(* state-machine                                                       *)
(* ------------------------------------------------------------------ *)

(* The PROP/REJ transition state of Algorithm 1 — the u_set/a_set/k_set
   triple — is defined in lib/core/lid.ml and nowhere else; every other
   driver is middleware over Lid.init/Lid.deliver.  A second definition
   anywhere (a record label, a binding, a parameter) is a second state
   machine growing back.  This replaces the textual grep that test_stack
   used to ship: the typedtree sees definitions, not mentions, so
   referencing Lid's state through its API stays legal. *)

let sm_name = "state-machine"
let sm_owner = "lid.ml"
let transition_state = [ "u_set"; "a_set"; "k_set" ]

let sm_check (ctx : Rule.context) =
  if ctx.Rule.basename = sm_owner then []
  else begin
    let out = ref [] in
    let add loc what kind =
      out :=
        Finding.v ~rule:sm_name ~file:ctx.Rule.file ~loc
          (Printf.sprintf
             "%s `%s' re-defines LID transition state outside %s; drive the \
              machine through Lid.init/Lid.deliver instead"
             kind what sm_owner)
        :: !out
    in
    (* record labels and inline-record constructor arguments *)
    let on_decl (td : Typedtree.type_declaration) =
      let open Types in
      let labels =
        match td.Typedtree.typ_type.type_kind with
        | Type_record (labels, _) -> labels
        | Type_variant (constrs, _) ->
            List.concat_map
              (fun c ->
                match c.cd_args with Cstr_record labels -> labels | _ -> [])
              constrs
        | _ -> []
      in
      List.iter
        (fun l ->
          let n = Ident.name l.ld_id in
          if List.mem n transition_state then add l.ld_loc n "record label")
        labels
    in
    let iter =
      {
        Tast_iterator.default_iterator with
        type_declaration =
          (fun sub td ->
            on_decl td;
            Tast_iterator.default_iterator.type_declaration sub td);
      }
    in
    iter.structure iter ctx.Rule.structure;
    (* bindings and parameters *)
    Rule.iter_value_names ctx.Rule.structure (fun n loc ->
        if List.mem n transition_state then add loc n "binding");
    List.sort Finding.order !out
  end

let state_machine =
  {
    Rule.name = sm_name;
    doc =
      "the LID transition state (u_set/a_set/k_set) is defined only in \
       lib/core/lid.ml; drivers compose middleware, they do not grow a \
       second machine";
    check = sm_check;
  }

(* ------------------------------------------------------------------ *)
(* layer-conformance                                                   *)
(* ------------------------------------------------------------------ *)

(* Every Stack middleware layer implements the full on_send/on_deliver/
   counters signature and contributes a real row to the per-layer
   counter table.  The type checker enforces the field types; what it
   cannot enforce is construction discipline: a layer built by record
   update ({ base with ... }) silently inherits another layer's
   callbacks, and a counters function that is literally (fun () -> [])
   registers no row, so the layer becomes invisible in every report and
   the conformance tests downstream of the table stop seeing it.  The
   serving layer's request handlers follow the same record discipline
   (on_request + counters), so the rule covers both shapes. *)

let lc_name = "layer-conformance"

let is_layer_shape (fields : (Types.label_description * 'a) array) =
  let names =
    Array.to_list (Array.map (fun (ld, _) -> ld.Types.lbl_name) fields)
  in
  (List.mem "on_send" names && List.mem "on_deliver" names)
  || List.mem "on_request" names

let rec function_body (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_function { cases = [ c ]; _ } -> function_body c.Typedtree.c_rhs
  | _ -> e

let is_empty_list (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_construct (_, cd, []) -> cd.Types.cstr_name = "[]"
  | _ -> false

let lc_check (ctx : Rule.context) =
  let out = ref [] in
  let add loc msg =
    out := Finding.v ~rule:lc_name ~file:ctx.Rule.file ~loc msg :: !out
  in
  Rule.iter_expressions ctx.Rule.structure (fun e ->
      match e.Typedtree.exp_desc with
      | Typedtree.Texp_record { fields; extended_expression; _ }
        when is_layer_shape fields ->
          if extended_expression <> None then
            add e.Typedtree.exp_loc
              "layer built by record update; spell out every field of the \
               layer signature explicitly"
          else
            Array.iter
              (fun ((ld : Types.label_description), def) ->
                match def with
                | Typedtree.Kept _ ->
                    add e.Typedtree.exp_loc
                      (Printf.sprintf
                         "layer field `%s' inherited instead of implemented"
                         ld.Types.lbl_name)
                | Typedtree.Overridden (_, fe) ->
                    let n = ld.Types.lbl_name in
                    let counters_field =
                      n = "counters"
                      || String.length n > 9
                         && String.sub n (String.length n - 8) 8 = "counters"
                    in
                    if counters_field && is_empty_list (function_body fe) then
                      add fe.Typedtree.exp_loc
                        (Printf.sprintf
                           "layer registers no counter row (`%s' is \
                            constantly []); every layer reports one row"
                           n))
              fields
      | _ -> ());
  List.sort Finding.order !out

let layer_conformance =
  {
    Rule.name = lc_name;
    doc =
      "every Stack layer (and serve request handler) spells out its full \
       signature (no record-update construction) and registers a counter \
       row";
    check = lc_check;
  }
