(** The rule registry's vocabulary: what a rule sees and the typedtree
    helpers every rule shares.

    A rule runs per compilation unit over the typedtree, with access to
    a pre-computed {e universe} of type facts gathered from every unit
    in the scan (which user-defined types carry floats, which are
    mutable records) — the cross-module knowledge a single [.cmt]
    cannot provide on its own. *)

(** {1 Cross-unit type facts} *)

type universe

val universe : (string * Typedtree.structure) list -> universe
(** Collect type declarations from every scanned unit (keyed by module
    name) and close them transitively: a record whose field is a
    float-bearing type is itself float-bearing. *)

val type_has_float : universe -> in_module:string -> Types.type_expr -> bool
(** The type is [float], or a tuple / known constructor (list, option,
    array, or a scanned declaration) carrying one.  [in_module]
    qualifies unqualified type names at their declaration site. *)

val type_is_mutable : universe -> in_module:string -> Types.type_expr -> bool
(** The type is a reference cell, array, hash table, buffer, or a
    scanned record with mutable fields. *)

(** {1 The per-unit context} *)

type context = {
  module_name : string;
  file : string;
  basename : string;
  structure : Typedtree.structure;
  pure : bool;  (** source carries the [(* owp-lint: pure *)] tag *)
  univ : universe;
}

type t = { name : string; doc : string; check : context -> Finding.t list }

(** {1 Typedtree helpers} *)

val path_parts : Path.t -> string list
(** Flattened path components with dune's [Lib__Module] mangling undone
    (["Owp_util__Pool"; "map"] becomes ["Owp_util"; "Pool"; "map"]). *)

val stdlib_head : string list -> string list
(** Drop a leading ["Stdlib"] component. *)

val tail_name : string list -> string
(** The last two components joined with ['.'] — the resolution-robust
    key used to match idents and type constructors. *)

val iter_expressions : Typedtree.structure -> (Typedtree.expression -> unit) -> unit
(** Visit every expression of the unit (module bodies included). *)

val iter_expr_within :
  Typedtree.expression -> (Typedtree.expression -> unit) -> unit
(** Visit every sub-expression of one expression (itself included). *)

val iter_value_names :
  Typedtree.structure -> (string -> Location.t -> unit) -> unit
(** Visit every name bound by a pattern (lets, function parameters,
    match cases) anywhere in the unit. *)

val head_ident : Typedtree.expression -> Path.t option
(** The identifier at the head of an application spine, if any. *)

val ident_of : Typedtree.expression -> (Path.t * Types.value_description) option
(** The expression is an identifier. *)

val loc_inside : Location.t -> Location.t -> bool
(** [loc_inside inner outer]: same file and contained character span. *)

val arrow_arg : Types.type_expr -> Types.type_expr option
(** First argument type when the expression type is an arrow. *)
