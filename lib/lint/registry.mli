(** The rule registry, mirroring {!Owp_check.Checker}: a fixed list of
    named rules, each with a one-line doc string, looked up by name for
    [--rule] filtering and listed by [owp lint --list]. *)

val all : Rule.t list
(** Every rule, in display order. *)

val names : string list
(** Names of {!all}, in the same order. *)

val find : string -> Rule.t option
