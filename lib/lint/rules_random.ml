(* seeded-random: the repo's reproducibility contract is that every
   random draw flows from an explicit seed through Owp_util.Prng (one
   stream per trial, split per node).  Stdlib Random is global mutable
   state shared across domains — Random.self_init destroys replay
   outright, and even seeded global use couples logically independent
   components through one hidden stream. *)

let name = "seeded-random"

let check (ctx : Rule.context) =
  let out = ref [] in
  Rule.iter_expressions ctx.Rule.structure (fun e ->
      match Rule.ident_of e with
      | None -> ()
      | Some (p, _) -> (
          match Rule.stdlib_head (Rule.path_parts p) with
          | "Random" :: rest ->
              let what = String.concat "." ("Random" :: rest) in
              let msg =
                if rest = [ "self_init" ] then
                  "`Random.self_init' seeds from the environment and kills \
                   replay; thread an explicit seed through Owp_util.Prng"
                else
                  Printf.sprintf
                    "global `%s' state; use a seeded Owp_util.Prng stream \
                     (Run_config carries the seed)"
                    what
              in
              out :=
                Finding.v ~rule:name ~file:ctx.Rule.file ~loc:e.Typedtree.exp_loc msg
                :: !out
          | _ -> ()));
  List.rev !out

let rule =
  {
    Rule.name;
    doc =
      "no Random.self_init and no global Stdlib.Random state anywhere; \
       randomness flows from explicit seeds through Owp_util.Prng";
    check;
  }
