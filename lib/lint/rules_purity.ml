(* pure-core: modules tagged [(* owp-lint: pure *)] are the protocol
   core — the determinism and replay story (the interleaving explorer,
   the stack's bit-identity anchors, --jobs reproducibility) rests on
   their transitions being functions of explicit state only.  Purity
   here means {e externally} pure: a pure module may mutate the state
   record handed to it (LID's transition relation does exactly that),
   but it may not hold module-level mutable state, perform I/O, read
   clocks, or draw ambient randomness. *)

let name = "pure-core"

(* idents whose mere presence breaks external purity *)
let banned_heads = [ "Unix"; "Sys"; "Random"; "In_channel"; "Out_channel" ]

let banned_idents =
  [
    [ "print_string" ]; [ "print_endline" ]; [ "print_newline" ]; [ "print_int" ];
    [ "print_char" ]; [ "print_float" ]; [ "prerr_string" ]; [ "prerr_endline" ];
    [ "prerr_newline" ]; [ "read_line" ]; [ "read_int" ]; [ "read_int_opt" ];
    [ "open_in" ]; [ "open_in_bin" ]; [ "open_out" ]; [ "open_out_bin" ];
    [ "stdin" ]; [ "stdout" ]; [ "stderr" ]; [ "exit" ]; [ "at_exit" ];
    [ "Printf"; "printf" ]; [ "Printf"; "eprintf" ]; [ "Printf"; "fprintf" ];
    [ "Format"; "printf" ]; [ "Format"; "eprintf" ]; [ "Format"; "print_string" ];
  ]

let check (ctx : Rule.context) =
  if not ctx.Rule.pure then []
  else begin
    let out = ref [] in
    let add loc msg =
      out := Finding.v ~rule:name ~file:ctx.Rule.file ~loc msg :: !out
    in
    (* module-level mutable state: any top-level binding whose type is a
       mutable container (functions are fine — local mutation inside a
       transition is the state machine doing its job) *)
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.Typedtree.str_desc with
        | Typedtree.Tstr_value (_, vbs) ->
            List.iter
              (fun (vb : Typedtree.value_binding) ->
                let ty = vb.Typedtree.vb_expr.Typedtree.exp_type in
                if
                  Rule.arrow_arg ty = None
                  && Rule.type_is_mutable ctx.Rule.univ
                       ~in_module:ctx.Rule.module_name ty
                then
                  add vb.Typedtree.vb_loc
                    "module-level mutable state in a pure module")
              vbs
        | _ -> ())
      ctx.Rule.structure.Typedtree.str_items;
    (* ambient effects: I/O, clocks, randomness *)
    Rule.iter_expressions ctx.Rule.structure (fun e ->
        match Rule.ident_of e with
        | None -> ()
        | Some (p, _) ->
            let parts = Rule.stdlib_head (Rule.path_parts p) in
            let hit =
              (match parts with h :: _ :: _ -> List.mem h banned_heads | _ -> false)
              || List.mem parts banned_idents
            in
            if hit then
              add e.Typedtree.exp_loc
                (Printf.sprintf "ambient effect `%s' in a pure module"
                   (String.concat "." parts)));
    List.rev !out
  end

let rule =
  {
    Rule.name;
    doc =
      "modules tagged `owp-lint: pure' (the protocol core) must not hold \
       module-level mutable state, perform I/O, read clocks, or use ambient \
       randomness";
    check;
  }
