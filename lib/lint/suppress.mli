(** Structured suppression comments.

    The analyzer works on typedtrees, which carry no comments, so
    suppressions are recovered from the source text (dune copies every
    source into [_build], so the file recorded in the [.cmt] is always
    readable next to it).  Two directives exist, both inside ordinary
    comments:

    - [(* owp-lint: allow RULE[, RULE...] — reason *)] — suppress the
      named rules on the same line and on the line immediately below
      (so a directive on its own line covers the next statement).
    - [(* owp-lint: pure *)] — tag the module as part of the pure
      protocol core; the [pure-core] rule runs only on tagged modules.

    Everything after the rule names (an em-dash reason, say) is
    ignored, but writing one is the expected style: a suppression is a
    claim that iteration order (or whatever the rule protects) provably
    cannot affect results, and the reason is where that proof sketch
    lives. *)

type t

val empty : t

val load : string -> t
(** [load path] scans [path] for directives; unreadable files yield
    {!empty}. *)

val pure : t -> bool
(** The module carries the [pure] tag. *)

val active : t -> rule:string -> line:int -> bool
(** An [allow] directive for [rule] covers [line]. *)

val markers : t -> int
(** Number of [allow] directives seen (reported so suppressed findings
    stay visible in the summary). *)
