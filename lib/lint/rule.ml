(* ------------------------------------------------------------------ *)
(* path helpers                                                        *)
(* ------------------------------------------------------------------ *)

(* undo dune's wrapped-library mangling: "Owp_util__Pool" -> two
   components, so name matching is stable whether a value is reached
   through the library alias module or directly *)
let split_mangled s =
  let parts = ref [] and start = ref 0 and n = String.length s in
  let i = ref 0 in
  while !i + 1 < n do
    if s.[!i] = '_' && s.[!i + 1] = '_' then begin
      if !i > !start then parts := String.sub s !start (!i - !start) :: !parts;
      i := !i + 2;
      start := !i
    end
    else incr i
  done;
  if !start < n then parts := String.sub s !start (n - !start) :: !parts;
  List.rev !parts

let rec path_parts = function
  | Path.Pident id -> split_mangled (Ident.name id)
  | Path.Pdot (p, s) -> path_parts p @ split_mangled s
  | Path.Papply (a, b) -> path_parts a @ path_parts b
  | Path.Pextra_ty (p, _) -> path_parts p

let stdlib_head = function "Stdlib" :: tl when tl <> [] -> tl | parts -> parts

let tail_name parts =
  match List.rev parts with
  | [] -> ""
  | [ x ] -> x
  | x :: y :: _ -> y ^ "." ^ x

(* ------------------------------------------------------------------ *)
(* the cross-unit type universe                                        *)
(* ------------------------------------------------------------------ *)

type universe = {
  float_types : (string, unit) Hashtbl.t;
  mutable_types : (string, unit) Hashtbl.t;
}

(* a declaration collected in pass 1: both its qualified keys and the
   component types its float-ness depends on *)
type decl = {
  keys : string list;
  home : string;  (** declaring module, to qualify sibling references *)
  parts : Types.type_expr list;
  mut : bool;
}

let short_module name =
  match List.rev (split_mangled name) with [] -> name | m :: _ -> m

let decl_keys ~module_name name =
  [ short_module module_name ^ "." ^ name; module_name ^ "." ^ name ]

let mutable_builtins =
  [ "ref"; "Hashtbl.t"; "Queue.t"; "Stack.t"; "Buffer.t"; "Atomic.t"; "Dynarray.t" ]

let float_containers = [ "list"; "option"; "array"; "Seq.t"; "Queue.t"; "ref" ]

let rec type_keys ~in_module ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) ->
      let parts = stdlib_head (path_parts p) in
      let t = tail_name parts in
      if List.length parts = 1 then [ t; short_module in_module ^ "." ^ t ] else [ t ]
  | Types.Tpoly (ty, _) -> type_keys ~in_module ty
  | _ -> []

let constr_args ty =
  match Types.get_desc ty with Types.Tconstr (_, args, _) -> args | _ -> []

let rec syntactic_float ~in_module univ depth ty =
  depth > 0
  &&
  match Types.get_desc ty with
  | Types.Tconstr (p, args, _) ->
      Path.same p Predef.path_float
      || Path.same p Predef.path_floatarray
      || List.exists (Hashtbl.mem univ.float_types) (type_keys ~in_module ty)
      || (let t = tail_name (stdlib_head (path_parts p)) in
          List.mem t float_containers
          && List.exists (syntactic_float ~in_module univ (depth - 1)) args)
  | Types.Ttuple tys -> List.exists (syntactic_float ~in_module univ (depth - 1)) tys
  | Types.Tpoly (ty, _) -> syntactic_float ~in_module univ (depth - 1) ty
  | Types.Tlink ty | Types.Tsubst (ty, _) ->
      syntactic_float ~in_module univ (depth - 1) ty
  | _ -> false

let collect_decls module_name structure =
  let decls = ref [] in
  let on_decl (td : Typedtree.type_declaration) =
    let open Types in
    let tt = td.Typedtree.typ_type in
    let parts, mut =
      match tt.type_kind with
      | Type_record (labels, _) ->
          ( List.map (fun l -> l.ld_type) labels,
            List.exists (fun l -> l.ld_mutable = Asttypes.Mutable) labels )
      | Type_variant (constrs, _) ->
          ( List.concat_map
              (fun c ->
                match c.cd_args with
                | Cstr_tuple tys -> tys
                | Cstr_record labels -> List.map (fun l -> l.ld_type) labels)
              constrs,
            false )
      | _ -> ([], false)
    in
    let parts =
      match tt.type_manifest with Some m -> m :: parts | None -> parts
    in
    decls :=
      {
        keys = decl_keys ~module_name (Ident.name td.Typedtree.typ_id);
        home = module_name;
        parts;
        mut;
      }
      :: !decls
  in
  let iter =
    {
      Tast_iterator.default_iterator with
      type_declaration =
        (fun sub td ->
          on_decl td;
          Tast_iterator.default_iterator.type_declaration sub td);
    }
  in
  iter.structure iter structure;
  !decls

let universe structures =
  let univ =
    { float_types = Hashtbl.create 64; mutable_types = Hashtbl.create 16 }
  in
  let decls = List.concat_map (fun (name, s) -> collect_decls name s) structures in
  List.iter
    (fun d ->
      if d.mut then List.iter (fun k -> Hashtbl.replace univ.mutable_types k ()) d.keys)
    decls;
  (* transitive closure of float-bearing-ness: a record holding a
     float-bearing record is float-bearing; three rounds bound the
     nesting depth this heuristic chases *)
  for _round = 1 to 3 do
    List.iter
      (fun d ->
        if
          (not (Hashtbl.mem univ.float_types (List.hd d.keys)))
          && List.exists
               (syntactic_float ~in_module:d.home univ 4)
               (d.parts @ List.concat_map constr_args d.parts)
        then List.iter (fun k -> Hashtbl.replace univ.float_types k ()) d.keys)
      decls
  done;
  univ

let type_has_float univ ~in_module ty = syntactic_float ~in_module univ 5 ty

let type_is_mutable univ ~in_module ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) ->
      Path.same p Predef.path_array
      || Path.same p Predef.path_bytes
      || Path.same p Predef.path_floatarray
      || List.mem (tail_name (stdlib_head (path_parts p))) mutable_builtins
      || List.exists (Hashtbl.mem univ.mutable_types) (type_keys ~in_module ty)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* the per-unit context and the rule type                              *)
(* ------------------------------------------------------------------ *)

type context = {
  module_name : string;
  file : string;
  basename : string;
  structure : Typedtree.structure;
  pure : bool;
  univ : universe;
}

type t = { name : string; doc : string; check : context -> Finding.t list }

(* ------------------------------------------------------------------ *)
(* traversal helpers                                                   *)
(* ------------------------------------------------------------------ *)

let iter_expressions structure f =
  let iter =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          f e;
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  iter.structure iter structure

let iter_expr_within expr f =
  let iter =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          f e;
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  iter.expr iter expr

let iter_value_names structure f =
  let iter =
    {
      Tast_iterator.default_iterator with
      pat =
        (fun (type k) sub (p : k Typedtree.general_pattern) ->
          (match p.Typedtree.pat_desc with
          | Typedtree.Tpat_var (id, _) -> f (Ident.name id) p.Typedtree.pat_loc
          | Typedtree.Tpat_alias (_, id, _) -> f (Ident.name id) p.Typedtree.pat_loc
          | _ -> ());
          Tast_iterator.default_iterator.pat sub p);
    }
  in
  iter.structure iter structure

let rec head_ident (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (p, _, _) -> Some p
  | Typedtree.Texp_apply (f, _) -> head_ident f
  | _ -> None

let ident_of (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (p, _, vd) -> Some (p, vd)
  | _ -> None

let loc_inside inner outer =
  let fname l = l.Location.loc_start.Lexing.pos_fname in
  fname inner = fname outer
  && inner.Location.loc_start.Lexing.pos_cnum
     >= outer.Location.loc_start.Lexing.pos_cnum
  && inner.Location.loc_end.Lexing.pos_cnum <= outer.Location.loc_end.Lexing.pos_cnum

let arrow_arg ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, a, _, _) -> Some a
  | _ -> None
