(* float-compare: polymorphic equality and comparison on floats (or on
   tuples/records carrying them) is how NaN and negative-zero slip into
   certificates — `nan = nan' is false, `compare nan nan' is 0, and a
   weight table with one NaN silently reorders.  Weights compare
   through the dedicated comparators (Weights.heavier/compare_edges,
   Float.equal/Float.compare); the polymorphic operators are flagged
   whenever their instantiated argument type carries a float.

   The check is on the identifier's instantiation, not the application,
   so `List.sort compare' over float-bearing elements is caught too. *)

let name = "float-compare"
let operators = [ "="; "<>"; "=="; "!="; "compare"; "min"; "max" ]

let check (ctx : Rule.context) =
  let out = ref [] in
  Rule.iter_expressions ctx.Rule.structure (fun e ->
      match Rule.ident_of e with
      | None -> ()
      | Some (p, _) -> (
          match Rule.path_parts p with
          | [ "Stdlib"; op ] when List.mem op operators -> (
              match Rule.arrow_arg e.Typedtree.exp_type with
              | Some arg
                when Rule.type_has_float ctx.Rule.univ
                       ~in_module:ctx.Rule.module_name arg ->
                  out :=
                    Finding.v ~rule:name ~file:ctx.Rule.file
                      ~loc:e.Typedtree.exp_loc
                      (Printf.sprintf
                         "polymorphic `%s' instantiated at a float-bearing \
                          type; use Float.equal/Float.compare or the \
                          dedicated weight comparators"
                         op)
                    :: !out
              | _ -> ())
          | _ -> ()));
  List.rev !out

let rule =
  {
    Rule.name;
    doc =
      "no polymorphic =/compare/min/max on floats or on types containing \
       them; weights compare via the dedicated comparators";
    check;
  }
