(* hash-order: Hashtbl.iter/fold and hashtable sequences enumerate
   buckets in an order that depends on the hash function and the
   insertion history — the classic way a refactor silently breaks the
   bit-identical --jobs guarantee and the replayable-schedule story.
   An enumeration is fine exactly when its order cannot reach the
   result: either the consumer sorts it (detected for the direct
   List.sort wrappings) or the computation is commutative (which the
   author asserts with a suppression comment, reason attached). *)

let name = "hash-order"

let enumerators =
  [
    "Hashtbl.iter"; "Hashtbl.fold"; "Hashtbl.to_seq"; "Hashtbl.to_seq_keys";
    "Hashtbl.to_seq_values";
  ]

let sorters = [ "List.sort"; "List.sort_uniq"; "List.stable_sort"; "List.fast_sort" ]
let pipes = [ "|>"; "@@" ]

let head_tail_name e =
  match Rule.head_ident e with
  | None -> ""
  | Some p -> Rule.tail_name (Rule.stdlib_head (Rule.path_parts p))

let check (ctx : Rule.context) =
  let sites = ref [] and sorted_spans = ref [] in
  Rule.iter_expressions ctx.Rule.structure (fun e ->
      (match Rule.ident_of e with
      | Some (p, _) ->
          let t = Rule.tail_name (Rule.stdlib_head (Rule.path_parts p)) in
          if List.mem t enumerators then sites := (e.Typedtree.exp_loc, t) :: !sites
      | None -> ());
      match e.Typedtree.exp_desc with
      | Typedtree.Texp_apply (f, args) ->
          let h = head_tail_name f in
          let arg_sorted =
            List.exists
              (fun (_, a) ->
                match a with
                | Some a -> List.mem (head_tail_name a) sorters
                | None -> false)
              args
          in
          if List.mem h sorters || (List.mem h pipes && arg_sorted) then
            sorted_spans := e.Typedtree.exp_loc :: !sorted_spans
      | _ -> ());
  List.filter_map
    (fun (loc, t) ->
      if List.exists (Rule.loc_inside loc) !sorted_spans then None
      else
        Some
          (Finding.v ~rule:name ~file:ctx.Rule.file ~loc
             (Printf.sprintf
                "`%s' enumerates in hash-bucket order; sort the result or \
                 suppress with a commutativity argument"
                t)))
    (List.rev !sites)

let rule =
  {
    Rule.name;
    doc =
      "no Hashtbl.iter/fold or hashtable-to-Seq in result-affecting code \
       unless the result is sorted in place or the site carries a reasoned \
       suppression";
    check;
  }
