(* clock-hygiene: wall-clock reads are the quietest determinism leak —
   a timestamp that reaches a weight, a seed, or a tie-break makes
   replay impossible and no test sees it until it flakes.  Every
   wall-time read therefore lives in the one designated shim
   (Owp_util.Clock); everything else consumes measured durations it
   hands out. *)

let name = "clock-hygiene"
let shim = "clock.ml"

let banned =
  [
    [ "Unix"; "gettimeofday" ];
    [ "Unix"; "time" ];
    [ "Unix"; "times" ];
    [ "Sys"; "time" ];
  ]

(* The serving layer is stricter still: every figure it reports is
   virtual time, so even the measured-duration shim is off limits
   there — one wall-clock duration reaching a latency percentile and
   the byte-identical replay guarantee is gone. *)
let serve_shim = [ "Owp_util"; "Clock" ]

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let in_serve_layer (ctx : Rule.context) =
  contains ctx.Rule.file "lib/serve" || contains ctx.Rule.basename "serve"

(* The simulator is held to the serve layer's standard: Simnet and its
   event wheel *manufacture* the virtual timestamps every layer above
   replays, so a measured wall-clock duration reaching the delivery
   loop would silently break the bit-identical determinism the sharded
   event store is verified against. *)
let in_simnet_layer (ctx : Rule.context) =
  contains ctx.Rule.file "lib/simnet"
  || contains ctx.Rule.basename "simnet"
  || contains ctx.Rule.basename "event_wheel"

let has_prefix prefix parts =
  let rec go = function
    | [], _ -> true
    | p :: ps, q :: qs when String.equal p q -> go (ps, qs)
    | _ -> false
  in
  go (prefix, parts)

let check (ctx : Rule.context) =
  if ctx.Rule.basename = shim then []
  else begin
    let serve = in_serve_layer ctx in
    let simnet = in_simnet_layer ctx in
    let out = ref [] in
    Rule.iter_expressions ctx.Rule.structure (fun e ->
        match Rule.ident_of e with
        | None -> ()
        | Some (p, _) ->
            let parts = Rule.stdlib_head (Rule.path_parts p) in
            if List.mem parts banned then
              out :=
                Finding.v ~rule:name ~file:ctx.Rule.file ~loc:e.Typedtree.exp_loc
                  (Printf.sprintf
                     "wall-clock read `%s' outside the timing shim \
                      (use Owp_util.Clock)"
                     (String.concat "." parts))
                :: !out
            else if (serve || simnet) && has_prefix serve_shim parts then
              out :=
                Finding.v ~rule:name ~file:ctx.Rule.file ~loc:e.Typedtree.exp_loc
                  (Printf.sprintf
                     (if serve then
                        "timing-shim read `%s' in the serving layer; serve \
                         figures are virtual time only"
                      else
                        "timing-shim read `%s' in the simulator; simulated \
                         time is virtual only")
                     (String.concat "." parts))
                :: !out);
    List.rev !out
  end

let rule =
  {
    Rule.name;
    doc =
      "wall-clock reads (Unix.gettimeofday, Sys.time, ...) only in the \
       designated timing shim lib/util/clock.ml; the serving layer and the \
       simulator (simnet, event_wheel) may not read even the shim";
    check;
  }
