(* clock-hygiene: wall-clock reads are the quietest determinism leak —
   a timestamp that reaches a weight, a seed, or a tie-break makes
   replay impossible and no test sees it until it flakes.  Every
   wall-time read therefore lives in the one designated shim
   (Owp_util.Clock); everything else consumes measured durations it
   hands out. *)

let name = "clock-hygiene"
let shim = "clock.ml"

let banned =
  [
    [ "Unix"; "gettimeofday" ];
    [ "Unix"; "time" ];
    [ "Unix"; "times" ];
    [ "Sys"; "time" ];
  ]

let check (ctx : Rule.context) =
  if ctx.Rule.basename = shim then []
  else begin
    let out = ref [] in
    Rule.iter_expressions ctx.Rule.structure (fun e ->
        match Rule.ident_of e with
        | None -> ()
        | Some (p, _) ->
            let parts = Rule.stdlib_head (Rule.path_parts p) in
            if List.mem parts banned then
              out :=
                Finding.v ~rule:name ~file:ctx.Rule.file ~loc:e.Typedtree.exp_loc
                  (Printf.sprintf
                     "wall-clock read `%s' outside the timing shim \
                      (use Owp_util.Clock)"
                     (String.concat "." parts))
                :: !out);
    List.rev !out
  end

let rule =
  {
    Rule.name;
    doc =
      "wall-clock reads (Unix.gettimeofday, Sys.time, ...) only in the \
       designated timing shim lib/util/clock.ml";
    check;
  }
