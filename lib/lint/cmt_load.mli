(** Locating and reading the [.cmt] typedtrees dune emits.

    Dune compiles every module with [-bin-annot], so after [dune build]
    each library directory holds a [.objs/byte] directory of [.cmt]
    files.  [scan] walks the given roots recursively, reads every
    implementation [.cmt] it finds, and resolves the module's source
    file (first against the recorded build directory — dune copies
    sources into [_build] — then against the current directory), so the
    suppression scanner can see the original comments. *)

type unit_info = {
  module_name : string;  (** e.g. ["Owp_core__Lid"] *)
  file : string;  (** display path, e.g. ["lib/core/lid.ml"] *)
  basename : string;  (** e.g. ["lid.ml"] *)
  source : string option;  (** readable copy of the source, if any *)
  structure : Typedtree.structure;
}

val scan : string list -> unit_info list
(** [scan roots] returns every implementation unit under the roots,
    sorted by display path.  Unreadable or non-implementation [.cmt]
    files are skipped silently. *)
