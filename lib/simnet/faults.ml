type t = {
  drop : float;
  duplicate : float;
  reorder : float;
  fifo : bool;
  crash : float;
  patience : float option;
}

let none =
  { drop = 0.0; duplicate = 0.0; reorder = 0.0; fifo = true; crash = 0.0; patience = None }

let make ?(drop = 0.0) ?(duplicate = 0.0) ?(reorder = 0.0) ?(fifo = true) ?(crash = 0.0)
    ?patience () =
  { drop; duplicate; reorder; fifo; crash; patience }

let equal a b =
  Float.equal a.drop b.drop
  && Float.equal a.duplicate b.duplicate
  && Float.equal a.reorder b.reorder
  && Bool.equal a.fifo b.fifo
  && Float.equal a.crash b.crash
  && Option.equal Float.equal a.patience b.patience

let channel t = Simnet.faults ~drop:t.drop ~duplicate:t.duplicate ~reorder:t.reorder ()

let channel_faulty t =
  t.drop > 0.0 || t.duplicate > 0.0 || t.reorder > 0.0 || not t.fifo

let any t = channel_faulty t || t.crash > 0.0

(* default protocol-level timeout armed when crashes are in play and no
   explicit patience was given: long enough that a live peer behind a
   lossy-but-retransmitting channel answers first (the transport's
   bounded-retry window drains well inside it at the default RTO), short
   enough that runs with crashed peers still terminate promptly *)
let default_crash_patience = 60.0

let effective_patience t =
  match t.patience with
  | Some _ as p -> p
  | None -> if t.crash > 0.0 then Some default_crash_patience else None

let validate t =
  let prob name p =
    if p < 0.0 || p > 1.0 then Error (Printf.sprintf "%s must be in [0, 1]" name)
    else Ok ()
  in
  let ( let* ) = Result.bind in
  let* () = prob "drop" t.drop in
  let* () = prob "dup" t.duplicate in
  let* () = prob "reorder" t.reorder in
  let* () = prob "crash" t.crash in
  match t.patience with
  | Some p when p <= 0.0 -> Error "patience must be positive"
  | _ -> Ok t

let of_string s =
  let s = String.trim (String.lowercase_ascii s) in
  if s = "" || s = "none" then Ok none
  else begin
    let parse_field acc item =
      Result.bind acc (fun t ->
          let fail () = Error (Printf.sprintf "bad fault field %S" item) in
          let fl v k =
            match float_of_string_opt v with Some f -> Ok (k f) | None -> fail ()
          in
          match String.split_on_char '=' (String.trim item) with
          | [ "unordered" ] -> Ok { t with fifo = false }
          | [ "fifo" ] -> Ok { t with fifo = true }
          | [ "drop"; v ] -> fl v (fun f -> { t with drop = f })
          | [ "dup"; v ] | [ "duplicate"; v ] -> fl v (fun f -> { t with duplicate = f })
          | [ "reorder"; v ] -> fl v (fun f -> { t with reorder = f })
          | [ "crash"; v ] -> fl v (fun f -> { t with crash = f })
          | [ "patience"; v ] -> fl v (fun f -> { t with patience = Some f })
          | _ -> fail ())
    in
    Result.bind
      (List.fold_left parse_field (Ok none) (String.split_on_char ',' s))
      validate
  end

(* shortest float rendering that round-trips through the parser *)
let fcell f =
  let s = Printf.sprintf "%.12g" f in
  s

let to_string t =
  let fields =
    List.concat
      [
        (if t.drop > 0.0 then [ "drop=" ^ fcell t.drop ] else []);
        (if t.duplicate > 0.0 then [ "dup=" ^ fcell t.duplicate ] else []);
        (if t.reorder > 0.0 then [ "reorder=" ^ fcell t.reorder ] else []);
        (if not t.fifo then [ "unordered" ] else []);
        (if t.crash > 0.0 then [ "crash=" ^ fcell t.crash ] else []);
        (match t.patience with Some p -> [ "patience=" ^ fcell p ] | None -> []);
      ]
  in
  match fields with [] -> "none" | fs -> String.concat "," fs

let pp ppf t = Format.pp_print_string ppf (to_string t)
