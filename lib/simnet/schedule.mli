(** Time-varying fault schedules: scripted network weather.

    {!Faults.t} describes an i.i.d. environment — every message tosses
    the same coins for its whole run.  Real overlays fail differently:
    the network partitions and heals, links flap with a duty cycle,
    loss arrives in bursts, hosts go down and come back.  A schedule is
    a list of timed {e episodes}, each active on a half-open virtual
    interval [\[t0, t1)], layered {e on top of} whatever i.i.d. faults
    the run already has.

    The last episode's end is the heal instant [T_heal]
    ({!end_time}); everything {!Owp_check.Stabilize} certifies is
    phrased relative to it.

    Like {!Faults}, the type has one compact spec syntax shared by the
    CLI, the chaos fuzzer and the benchmark harness
    ({!of_string}/{!to_string} round-trip).  Episodes are
    [;]-separated; node ids join with [.], groups separate with [|],
    and [@t0-t1] closes each episode:

    - [part:0.1|2.3@2-6] — nodes split into blocks {0,1} | {2,3} (all
      unlisted nodes form one implicit further block); cross-block
      messages are cut
    - [link:0.1|2.3@2-5] — the undirected links (0,1) and (2,3) are down
    - [flap:0.1:1.5:0.5@2-8] — link (0,1) flaps with period 1.5, down
      for the first half (duty 0.5) of every period
    - [burst:0.9@3-4] — every message in flight loses an extra 0.9 coin
    - [down:2.5@1-6] — nodes 2 and 5 crash at t=1 and restart at t=6 *)

type kind =
  | Partition of int list list
      (** named blocks; unlisted nodes form one implicit extra block *)
  | Link_down of (int * int) list  (** undirected links cut *)
  | Flap of { links : (int * int) list; period : float; duty : float }
      (** links down while [(t - t0) mod period < duty * period] *)
  | Burst of float  (** additional per-delivery loss probability *)
  | Down of int list  (** nodes crash at [from_], restart at [until] *)

type episode = { from_ : float; until : float; what : kind }
type t = episode list

val empty : t
val is_empty : t -> bool

val equal : t -> t -> bool
(** Structural, with [Float.equal] on times and parameters (the type
    carries floats, so polymorphic [=] is off limits). *)

val active : t -> at:float -> bool
(** Some episode covers [at] — the stack is inside an outage it cannot
    distinguish from silence, so give-ups must be suspended, not
    fired. *)

val overlaps : t -> from_:float -> until:float -> bool
(** Some episode intersects the half-open window [[from_, until)].
    This is the give-up suppression test: a peer silent over a window
    the weather touched is not evidence of death — a timer that fires
    just {e after} the heal, while the healed link's answer is still in
    flight, must wait one more clean window ({!active} at the fire
    instant alone would let it fire falsely). *)

val end_time : t -> float
(** [T_heal]: the supremum of episode ends ([0.] for {!empty}).  After
    this instant {!active} is [false] forever and recovery is on the
    clock. *)

val outage : t -> at:float -> src:int -> dst:int -> float
(** Loss probability the schedule imposes on a delivery [src → dst] at
    virtual time [at]: [1.0] when a partition, downed link or flapping
    link (in its down phase) cuts the pair, otherwise the strongest
    active burst's probability, otherwise [0.].  Purely a function of
    its arguments — the simulator samples the coin. *)

val down_spans : t -> (int * float * float) list
(** [(node, crash_at, restart_at)] for every node of every [Down]
    episode, in episode order — ready to desugar into
    {!Owp_core.Stack.crash_plan}s. *)

val validate : ?n:int -> t -> (t, string) result
(** Intervals well-formed ([0 <= t0 < t1]), parameters in range
    (period positive, duty and burst in [(0, 1]]), groups non-empty,
    link endpoints distinct, no node downed by two overlapping
    episodes; node ids in [\[0, n)] when [n] is given. *)

val of_string : string -> (t, string) result
(** Parse the [--schedule] spec described above; ["none"] or the empty
    string is {!empty}.  The result is {!validate}d (without [n]). *)

val to_string : t -> string
(** Canonical spec; ["none"] when empty.
    [of_string (to_string t) = Ok t]. *)

val pp : Format.formatter -> t -> unit
