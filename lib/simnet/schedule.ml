type kind =
  | Partition of int list list
  | Link_down of (int * int) list
  | Flap of { links : (int * int) list; period : float; duty : float }
  | Burst of float
  | Down of int list

type episode = { from_ : float; until : float; what : kind }
type t = episode list

let empty = []
let is_empty = function [] -> true | _ -> false

let equal_link (a, b) (c, d) = a = c && b = d

let equal_kind a b =
  match (a, b) with
  | Partition x, Partition y -> List.equal (List.equal Int.equal) x y
  | Link_down x, Link_down y -> List.equal equal_link x y
  | Flap x, Flap y ->
      List.equal equal_link x.links y.links
      && Float.equal x.period y.period
      && Float.equal x.duty y.duty
  | Burst x, Burst y -> Float.equal x y
  | Down x, Down y -> List.equal Int.equal x y
  | _ -> false

let equal_episode a b =
  Float.equal a.from_ b.from_ && Float.equal a.until b.until && equal_kind a.what b.what

let equal a b = List.equal equal_episode a b

let covers e ~at = e.from_ <= at && at < e.until
let active t ~at = List.exists (covers ~at) t

let overlaps t ~from_ ~until =
  List.exists (fun e -> e.from_ < until && from_ < e.until) t

let end_time t = List.fold_left (fun acc e -> Float.max acc e.until) 0.0 t

(* a flapping link is down for the duty-cycle prefix of every period,
   phase-locked to the episode start *)
let flap_down e ~at ~period ~duty =
  let phase = Float.rem (at -. e.from_) period in
  phase < duty *. period

let same_link (u, v) ~src ~dst = (u = src && v = dst) || (u = dst && v = src)

(* partition block index of a node; unlisted nodes share block -1 *)
let block_of blocks node =
  let rec go i = function
    | [] -> -1
    | b :: rest -> if List.mem node b then i else go (i + 1) rest
  in
  go 0 blocks

let cuts e ~at ~src ~dst =
  covers e ~at
  &&
  match e.what with
  | Partition blocks -> block_of blocks src <> block_of blocks dst
  | Link_down links -> List.exists (same_link ~src ~dst) links
  | Flap { links; period; duty } ->
      List.exists (same_link ~src ~dst) links && flap_down e ~at ~period ~duty
  | Burst _ | Down _ -> false

let outage t ~at ~src ~dst =
  if List.exists (cuts ~at ~src ~dst) t then 1.0
  else
    List.fold_left
      (fun acc e ->
        match e.what with
        | Burst p when covers e ~at -> Float.max acc p
        | _ -> acc)
      0.0 t

let down_spans t =
  List.concat_map
    (fun e ->
      match e.what with
      | Down nodes -> List.map (fun v -> (v, e.from_, e.until)) nodes
      | _ -> [])
    t

(* ------------------------------------------------------------------ *)
(* validation                                                          *)
(* ------------------------------------------------------------------ *)

let validate ?n t =
  let ( let* ) = Result.bind in
  let node v =
    match n with
    | Some n when v < 0 || v >= n ->
        Error (Printf.sprintf "node %d out of range [0, %d)" v n)
    | _ when v < 0 -> Error (Printf.sprintf "node %d negative" v)
    | _ -> Ok ()
  in
  let nodes vs = List.fold_left (fun acc v -> Result.bind acc (fun () -> node v)) (Ok ()) vs in
  let links ls =
    List.fold_left
      (fun acc (u, v) ->
        let* () = acc in
        if u = v then Error (Printf.sprintf "link %d.%d joins a node to itself" u v)
        else nodes [ u; v ])
      (Ok ()) ls
  in
  let episode e =
    let* () =
      if e.from_ < 0.0 then Error "episode start must be non-negative"
      else if e.until <= e.from_ then Error "episode must end after it starts"
      else Ok ()
    in
    match e.what with
    | Partition [] -> Error "partition needs at least one block"
    | Partition blocks ->
        if List.exists (fun b -> b = []) blocks then Error "empty partition block"
        else nodes (List.concat blocks)
    | Link_down [] -> Error "link episode needs at least one link"
    | Link_down ls -> links ls
    | Flap { links = []; _ } -> Error "flap episode needs at least one link"
    | Flap { links = ls; period; duty } ->
        let* () = links ls in
        if period <= 0.0 then Error "flap period must be positive"
        else if duty <= 0.0 || duty > 1.0 then Error "flap duty must be in (0, 1]"
        else Ok ()
    | Burst p ->
        if p <= 0.0 || p > 1.0 then Error "burst probability must be in (0, 1]" else Ok ()
    | Down [] -> Error "down episode needs at least one node"
    | Down vs -> nodes vs
  in
  let* () = List.fold_left (fun acc e -> Result.bind acc (fun () -> episode e)) (Ok ()) t in
  (* a node may only be downed once: overlapping crash-restart spans for
     the same node have no sane desugaring into crash plans *)
  let spans = down_spans t in
  let rec overlap = function
    | [] -> Ok ()
    | (v, a0, a1) :: rest ->
        if
          List.exists
            (fun (w, b0, b1) -> v = w && a0 < b1 && b0 < a1)
            rest
        then Error (Printf.sprintf "node %d downed by overlapping episodes" v)
        else overlap rest
  in
  let* () = overlap spans in
  Ok t

(* ------------------------------------------------------------------ *)
(* spec syntax                                                         *)
(* ------------------------------------------------------------------ *)

let fcell f = Printf.sprintf "%.12g" f

let link_str (u, v) = Printf.sprintf "%d.%d" u v
let group_str vs = String.concat "." (List.map string_of_int vs)

let episode_to_string e =
  let head =
    match e.what with
    | Partition blocks ->
        "part:" ^ String.concat "|" (List.map group_str blocks)
    | Link_down ls -> "link:" ^ String.concat "|" (List.map link_str ls)
    | Flap { links; period; duty } ->
        Printf.sprintf "flap:%s:%s:%s"
          (String.concat "|" (List.map link_str links))
          (fcell period) (fcell duty)
    | Burst p -> "burst:" ^ fcell p
    | Down vs -> "down:" ^ group_str vs
  in
  Printf.sprintf "%s@%s-%s" head (fcell e.from_) (fcell e.until)

let to_string t =
  match t with
  | [] -> "none"
  | es -> String.concat ";" (List.map episode_to_string es)

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* [t0-t1] where either time may itself contain '-' (an exponent):
   split at the first '-' that leaves two parseable floats *)
let parse_range s =
  let len = String.length s in
  let rec go i =
    if i >= len then None
    else if s.[i] = '-' then
      match
        ( float_of_string_opt (String.sub s 0 i),
          float_of_string_opt (String.sub s (i + 1) (len - i - 1)) )
      with
      | Some a, Some b -> Some (a, b)
      | _ -> go (i + 1)
    else go (i + 1)
  in
  go 0

let parse_int s = int_of_string_opt (String.trim s)

let parse_group s =
  let parts = String.split_on_char '.' s in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | p :: rest -> ( match parse_int p with Some v -> go (v :: acc) rest | None -> None)
  in
  if s = "" then None else go [] parts

let parse_links s =
  let pairs = String.split_on_char '|' s in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | p :: rest -> (
        match parse_group p with
        | Some [ u; v ] -> go ((u, v) :: acc) rest
        | _ -> None)
  in
  go [] pairs

let parse_blocks s =
  let blocks = String.split_on_char '|' s in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | b :: rest -> ( match parse_group b with Some vs -> go (vs :: acc) rest | None -> None)
  in
  go [] blocks

let parse_episode item =
  let fail () = Error (Printf.sprintf "bad schedule episode %S" item) in
  match String.split_on_char '@' (String.trim item) with
  | [ head; range ] -> (
      match parse_range range with
      | None -> fail ()
      | Some (from_, until) -> (
          let ep what = Ok { from_; until; what } in
          match String.split_on_char ':' head with
          | [ "part"; blocks ] -> (
              match parse_blocks blocks with Some bs -> ep (Partition bs) | None -> fail ())
          | [ "link"; links ] -> (
              match parse_links links with Some ls -> ep (Link_down ls) | None -> fail ())
          | [ "flap"; links; period; duty ] -> (
              match
                (parse_links links, float_of_string_opt period, float_of_string_opt duty)
              with
              | Some ls, Some p, Some d -> ep (Flap { links = ls; period = p; duty = d })
              | _ -> fail ())
          | [ "burst"; p ] -> (
              match float_of_string_opt p with Some p -> ep (Burst p) | None -> fail ())
          | [ "down"; nodes ] -> (
              match parse_group nodes with Some vs -> ep (Down vs) | None -> fail ())
          | _ -> fail ()))
  | _ -> fail ()

let of_string s =
  let s = String.trim (String.lowercase_ascii s) in
  if s = "" || s = "none" then Ok empty
  else
    let items = String.split_on_char ';' s |> List.filter (fun i -> String.trim i <> "") in
    let rec go acc = function
      | [] -> validate (List.rev acc)
      | item :: rest -> (
          match parse_episode item with
          | Ok e -> go (e :: acc) rest
          | Error _ as e -> e)
    in
    go [] items
