(** Reliable-delivery transport over a faulty {!Simnet}.

    {!Simnet} models a raw datagram network: messages can be dropped,
    duplicated or reordered, and hosts can crash.  The paper's LID
    analysis (Lemmas 5-6) assumes none of that — it needs reliable
    per-link FIFO channels.  This module closes the gap the way a real
    overlay would: a small ARQ protocol per directed link.

    Mechanisms, per directed link:
    - {b sequence numbers} on every data frame, so the receiver can
      suppress duplicates and reassemble order;
    - {b in-order delivery}: out-of-order arrivals are buffered and the
      contiguous prefix is handed to the application, so the layer above
      sees a FIFO channel even on a reordering network;
    - {b cumulative ACKs}: the receiver acknowledges the highest
      contiguously received sequence number on every arrival;
    - {b retransmission timers} with exponential backoff and
      multiplicative jitter; any ACK progress resets the backoff;
    - {b bounded retries}: after [max_retries] consecutive silent
      retransmission rounds the sender {e gives up}, discards the
      window and reports the peer dead via [on_peer_dead] — the same
      "treat the peer as silent" escape hatch the robust stack
      configuration uses, so the protocol above can fall back to an
      implicit decline;
    - {b incarnation epochs} for crash-restart: {!restart_node} clears
      the node's volatile link state and bumps its epoch; peers discard
      frames from dead incarnations and reset their receive state when
      a higher epoch appears.

    With [max_retries] large enough that give-up never fires (loss
    probability < 1 guarantees each retransmission round succeeds with
    positive probability), the layer delivers every message exactly
    once, in per-link FIFO order — restoring the exact hypotheses of
    Lemmas 5-6 for {!Owp_core.Stack}[.run ~reliable:true]. *)

type 'm frame =
  | Data of { epoch : int; seq : int; payload : 'm }
  | Ack of { epoch : int; cum : int }
      (** cumulative: everything up to [cum] (inclusive) arrived *)

type config = {
  rto_initial : float;  (** first retransmission timeout *)
  rto_backoff : float;  (** multiplier per silent round, >= 1 *)
  rto_max : float;  (** backoff ceiling *)
  rto_jitter : float;  (** uniform multiplicative jitter in [0, j] *)
  max_retries : int;
      (** consecutive silent retransmission rounds before the peer is
          declared dead *)
}

val default_config : config
(** [rto_initial = 4.0] (a few one-way delays of the default
    [Uniform (0.5, 1.5)] model), [rto_backoff = 1.6], [rto_max = 48.0],
    [rto_jitter = 0.25], [max_retries = 24] — at drop probability 0.3
    the chance of 25 consecutive losses on one frame is [3e-14], so
    give-up effectively never fires below extreme loss. *)

type 'm t

val create :
  ?config:config ->
  ?jitter_seed:int ->
  ?hold:(node:int -> peer:int -> bool) ->
  'm frame Simnet.t ->
  on_deliver:(src:int -> dst:int -> 'm -> unit) ->
  on_peer_dead:(node:int -> peer:int -> unit) ->
  'm t
(** Installs itself as the network's handler (do not call
    {!Simnet.set_handler} afterwards).  [on_deliver] receives exactly
    the application payloads, deduplicated and in per-link send order;
    it may call {!send} reentrantly.  [on_peer_dead ~node ~peer] fires
    at most once per directed link when [node] exhausts its retries
    towards [peer].

    [hold] (default: never) is consulted at the moment the retry budget
    runs out: when it answers [true] — e.g. a scheduled outage episode
    is active, so the silence is indistinguishable from a partition the
    stack has been told about — the sender {e suspects} the link
    instead of giving up: the retry budget is refreshed and the window
    keeps retransmitting at the capped RTO, so the stream resumes by
    itself once the network heals (the first ACK through clears the
    suspicion).  Suspect/resume transitions are counted in
    {!links_suspected}/{!links_resumed}. *)

val send : 'm t -> src:int -> dst:int -> 'm -> unit
(** Hand a payload to the transport.  Discarded if [src] is down
    (crashed hosts cannot transmit) or if [src] has already declared
    [dst] dead. *)

val restart_node : 'm t -> int -> unit
(** Clear the volatile transport state of a node that crashed and came
    back, and bump its incarnation epoch.  Call after
    {!Simnet.restart}. *)

val peer_dead : 'm t -> node:int -> peer:int -> bool
(** Has [node] given up on [peer]? *)

(** {2 Accounting} *)

val data_sent : _ t -> int
(** First transmissions of application payloads. *)

val retransmissions : _ t -> int
val acks_sent : _ t -> int
val duplicates_suppressed : _ t -> int
val peers_declared_dead : _ t -> int

val links_suspected : _ t -> int
(** Links whose give-up was converted into suspicion by the [hold]
    hook (counted once per suspicion episode, not per held firing). *)

val links_resumed : _ t -> int
(** Suspected links that saw ACK progress again — healed streams that
    picked up where they left off. *)

val give_ups_held : _ t -> int
(** Individual retry-exhaustion events the [hold] hook suppressed
    (every [max_retries] silent rounds while suspected adds one). *)

val frames_sent : _ t -> int
(** [data_sent + retransmissions + acks_sent] — the wire total to
    compare against the fault-free protocol message count. *)
