type model =
  | Weight_liar of float
  | Equivocator
  | Flooder of int
  | Replayer
  | State_violator

let default_liar_inflation = 0.5
let default_flooder_sweeps = 2

let default_of_name s =
  match String.lowercase_ascii s with
  | "liar" | "weight-liar" -> Some (Weight_liar default_liar_inflation)
  | "equivocator" | "equiv" -> Some Equivocator
  | "flooder" | "flood" -> Some (Flooder default_flooder_sweeps)
  | "replayer" | "replay" -> Some Replayer
  | "violator" | "state-violator" -> Some State_violator
  | _ -> None

let name = function
  | Weight_liar _ -> "liar"
  | Equivocator -> "equivocator"
  | Flooder _ -> "flooder"
  | Replayer -> "replayer"
  | State_violator -> "violator"

let describe = function
  | Weight_liar f ->
      Printf.sprintf
        "weight-liar: advertises (1 + %.2f)/b, above the structural half-weight \
         bound 1/b"
        f
  | Equivocator ->
      "equivocator: proposes to everyone and accepts every proposal, locking far \
       beyond its quota"
  | Flooder k ->
      Printf.sprintf
        "flooder: never answers, spams %d PROP sweep(s) over all neighbours per \
         receipt (budget-bounded)"
        k
  | Replayer -> "replayer: duplicates and stale-epoch replays of its own messages"
  | State_violator ->
      "state-machine violator: PROP-to-stranger, REJ-after-lock, and never answers \
       proposals"

let all_defaults =
  [
    Weight_liar default_liar_inflation;
    Equivocator;
    Flooder default_flooder_sweeps;
    Replayer;
    State_violator;
  ]

let parse_one item =
  match String.split_on_char ':' (String.trim item) with
  | [ m; f ] -> begin
      match (default_of_name m, float_of_string_opt (String.trim f)) with
      | Some model, Some frac when frac > 0.0 && frac <= 1.0 -> (model, frac)
      | Some _, Some _ ->
          invalid_arg
            (Printf.sprintf "Adversary.parse_spec: fraction %s outside (0, 1]" f)
      | Some _, None ->
          invalid_arg (Printf.sprintf "Adversary.parse_spec: bad fraction %S" f)
      | None, _ ->
          invalid_arg
            (Printf.sprintf
               "Adversary.parse_spec: unknown model %S (expected \
                liar|equivocator|flooder|replayer|violator)"
               m)
    end
  | _ ->
      invalid_arg
        (Printf.sprintf "Adversary.parse_spec: expected MODEL:FRAC, got %S" item)

let parse_spec s =
  match String.split_on_char ',' s with
  | [] | [ "" ] -> invalid_arg "Adversary.parse_spec: empty spec"
  | items -> List.map parse_one items

let assign rng ~n specs =
  if n <= 0 then invalid_arg "Adversary.assign: empty network";
  let wanted =
    List.map
      (fun (m, frac) -> (m, max 1 (int_of_float (Float.round (frac *. float_of_int n)))))
      specs
  in
  let total = List.fold_left (fun acc (_, k) -> acc + k) 0 wanted in
  if total >= n then
    invalid_arg
      (Printf.sprintf
         "Adversary.assign: %d adversaries leave no correct node among %d" total n);
  let order = Owp_util.Prng.sample_without_replacement rng total n in
  let roles = Array.make n None in
  let next = ref 0 in
  List.iter
    (fun (m, k) ->
      for _ = 1 to k do
        roles.(order.(!next)) <- Some m;
        incr next
      done)
    wanted;
  roles

type 'm behaviour = {
  on_init : send:(dst:int -> 'm -> unit) -> unit;
  on_receive : src:int -> 'm -> send:(dst:int -> 'm -> unit) -> unit;
}

let silent =
  { on_init = (fun ~send:_ -> ()); on_receive = (fun ~src:_ _ ~send:_ -> ()) }
