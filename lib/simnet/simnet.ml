module Prng = Owp_util.Prng
module Pool = Owp_util.Pool
module Event_wheel = Owp_util.Event_wheel

type delay_model =
  | Unit
  | Uniform of float * float
  | Exponential of float
  | PerLink of (int -> int -> float)

type faults = {
  drop_probability : float;
  duplicate_probability : float;
  reorder_probability : float;
}

let no_faults =
  { drop_probability = 0.0; duplicate_probability = 0.0; reorder_probability = 0.0 }

let faults ?(drop = 0.0) ?(duplicate = 0.0) ?(reorder = 0.0) () =
  { drop_probability = drop; duplicate_probability = duplicate; reorder_probability = reorder }

(* Events live in per-shard {!Event_wheel}s keyed by (at, seq); the
   wheel payload is an arena slot.  Slot >= 0 is a message: [m_link]
   packs the directed link as src * nodes + dst and [m_pay] holds the
   message itself.  Slot < 0 encodes callback arena index -slot - 1.
   Freed slots chain into a free list through the same int array, so
   steady-state traffic allocates nothing per event. *)

type 'm t = {
  nodes : int;
  rng : Prng.t;
  fifo : bool;
  faults : faults;
  delay : delay_model;
  shards : int;
  block : int; (* nodes per shard (contiguous ranges) *)
  jobs : int; (* domains available for batched window opening *)
  wheels : Event_wheel.t array; (* length shards; callbacks go to wheel 0 *)
  (* message arena *)
  mutable m_link : int array; (* live: packed src * nodes + dst; free: next free slot *)
  mutable m_pay : 'm array; (* [||] until the first message; slot 0 is a permanent dummy *)
  mutable m_free : int; (* free-list head, -1 when the arena is full *)
  (* callback arena *)
  mutable c_fn : (unit -> unit) array;
  mutable c_next : int array;
  mutable c_free : int;
  (* open-addressed link-clock table: packed link -> last scheduled
     delivery, for the FIFO clamp.  Linear probing over a power-of-two
     array; empty slots hold key -1; values stay unboxed in the float
     array.  Compaction drops entries the virtual clock has passed. *)
  mutable lc_key : int array;
  mutable lc_val : float array;
  mutable lc_n : int;
  up : bool array; (* crash/restart state; length max nodes 1 *)
  mutable handler : (src:int -> dst:int -> 'm -> unit) option;
  mutable trace : (float -> src:int -> dst:int -> 'm -> unit) option;
  mutable outage : (at:float -> src:int -> dst:int -> float) option;
  mutable clock : float;
  mutable next_seq : int;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable reordered : int;
  mutable lost_to_crashes : int;
  mutable cut : int;
  mutable crash_count : int;
  mutable processed : int;
}

let check_probability name p =
  if p < 0.0 || p > 1.0 then invalid_arg (Printf.sprintf "Simnet.create: %s out of range" name)

(* bucket width matched to the delay model — a throughput knob only;
   the wheel's pop order is exact for any width *)
let wheel_width = function
  | Unit -> 0.5
  | Uniform (lo, hi) ->
      let w = (lo +. hi) /. 4.0 in
      if Float.is_finite w && w > 0.0 then w else 0.25
  | Exponential mean ->
      let w = mean /. 2.0 in
      if Float.is_finite w && w > 0.0 then w else 0.25
  | PerLink _ -> 0.5

let create ?(seed = 0xC0FFEE) ?(fifo = true) ?(faults = no_faults) ?(shards = 1)
    ?(unsafe_lookahead = false) ~nodes ~delay () =
  if nodes < 0 then invalid_arg "Simnet.create: negative node count";
  check_probability "drop_probability" faults.drop_probability;
  check_probability "duplicate_probability" faults.duplicate_probability;
  check_probability "reorder_probability" faults.reorder_probability;
  if shards < 1 then invalid_arg "Simnet.create: shards must be positive";
  let shards = if nodes = 0 then 1 else min shards nodes in
  let width = wheel_width delay in
  {
    nodes;
    rng = Prng.create seed;
    fifo;
    faults;
    delay;
    shards;
    block = (if nodes = 0 then 1 else (nodes + shards - 1) / shards);
    jobs = Pool.default_jobs ();
    wheels =
      Array.init shards (fun _ ->
          Event_wheel.create ~width ~unsafe_lookahead ());
    m_link = [||];
    m_pay = [||];
    m_free = -1;
    c_fn = [||];
    c_next = [||];
    c_free = -1;
    lc_key = Array.make 1024 (-1);
    lc_val = Array.make 1024 0.0;
    lc_n = 0;
    up = Array.make (max nodes 1) true;
    handler = None;
    trace = None;
    outage = None;
    clock = 0.0;
    next_seq = 0;
    sent = 0;
    delivered = 0;
    dropped = 0;
    reordered = 0;
    lost_to_crashes = 0;
    cut = 0;
    crash_count = 0;
    processed = 0;
  }

let node_count t = t.nodes
let shard_count t = t.shards
let now t = t.clock
let set_handler t h = t.handler <- Some h
let set_trace t tr = t.trace <- tr
let set_outage t f = t.outage <- f

let check_node fn t v =
  if v < 0 || v >= t.nodes then invalid_arg (Printf.sprintf "Simnet.%s: node out of range" fn)

let is_up t v =
  check_node "is_up" t v;
  t.up.(v)

let crash t v =
  check_node "crash" t v;
  if t.up.(v) then begin
    t.up.(v) <- false;
    t.crash_count <- t.crash_count + 1
  end

let restart t v =
  check_node "restart" t v;
  t.up.(v) <- true

(* ------------------------------------------------------------------ *)
(* arenas                                                              *)
(* ------------------------------------------------------------------ *)

(* slot 0 is a permanent dummy holding the first message ever stored:
   it gives released slots a value to point at so the arena never
   retains more than O(1) dead payloads *)
let slot_alloc t link m =
  if t.m_free < 0 then begin
    let old = Array.length t.m_pay in
    if old = 0 then begin
      let cap = 16 in
      t.m_pay <- Array.make cap m;
      t.m_link <- Array.make cap (-1);
      for i = 1 to cap - 2 do
        t.m_link.(i) <- i + 1
      done;
      t.m_link.(cap - 1) <- -1;
      t.m_free <- 1
    end
    else begin
      let cap = 2 * old in
      let pay = Array.make cap t.m_pay.(0) in
      Array.blit t.m_pay 0 pay 0 old;
      let lnk = Array.make cap (-1) in
      Array.blit t.m_link 0 lnk 0 old;
      for i = old to cap - 2 do
        lnk.(i) <- i + 1
      done;
      lnk.(cap - 1) <- -1;
      t.m_pay <- pay;
      t.m_link <- lnk;
      t.m_free <- old
    end
  end;
  let s = t.m_free in
  t.m_free <- t.m_link.(s);
  t.m_link.(s) <- link;
  t.m_pay.(s) <- m;
  s

let slot_release t s =
  t.m_pay.(s) <- t.m_pay.(0);
  t.m_link.(s) <- t.m_free;
  t.m_free <- s

let noop () = ()

let cb_alloc t f =
  if t.c_free < 0 then begin
    let old = Array.length t.c_fn in
    let cap = max 16 (2 * old) in
    let fn = Array.make cap noop in
    Array.blit t.c_fn 0 fn 0 old;
    let nx = Array.make cap (-1) in
    Array.blit t.c_next 0 nx 0 old;
    for i = old to cap - 2 do
      nx.(i) <- i + 1
    done;
    nx.(cap - 1) <- -1;
    t.c_fn <- fn;
    t.c_next <- nx;
    t.c_free <- old
  end;
  let s = t.c_free in
  t.c_free <- t.c_next.(s);
  t.c_fn.(s) <- f;
  s

let cb_release t s =
  t.c_fn.(s) <- noop;
  t.c_next.(s) <- t.c_free;
  t.c_free <- s

(* ------------------------------------------------------------------ *)
(* enqueue                                                             *)
(* ------------------------------------------------------------------ *)

let sample_delay t src dst =
  let d =
    match t.delay with
    | Unit -> 1.0
    | Uniform (lo, hi) ->
        if hi < lo then invalid_arg "Simnet: bad uniform delay bounds";
        lo +. Prng.float t.rng (hi -. lo)
    | Exponential mean -> Prng.exponential t.rng mean
    | PerLink f -> f src dst
  in
  if d < 0.0 then invalid_arg "Simnet: negative delay";
  (* strictly positive so a message never arrives "now" *)
  Float.max d 1e-9

let shard_of t dst = dst / t.block

let push_deliver t at ~src ~dst m =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let slot = slot_alloc t ((src * t.nodes) + dst) m in
  Event_wheel.add t.wheels.(shard_of t dst) ~at ~seq slot

let push_callback t at f =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let idx = cb_alloc t f in
  Event_wheel.add t.wheels.(0) ~at ~seq (-idx - 1)

(* slot where [key] lives or would be inserted (linear probing) *)
let lc_probe t key =
  let mask = Array.length t.lc_key - 1 in
  let i = ref (key * 0x2545F4914F6CDD1D land mask) in
  while
    let k = Array.unsafe_get t.lc_key !i in
    k >= 0 && k <> key
  do
    i := (!i + 1) land mask
  done;
  !i

(* Rebuild the table, dropping entries the virtual clock has passed:
   once [prev <= clock], every future base [clock + delay > prev] beats
   the clamp, so the entry can never fire again — it is equivalent to
   absent.  Capacity tracks the live population (growing when traffic
   genuinely keeps that many links hot), so the table is bounded by the
   in-flight working set, not by the total links ever used. *)
let lc_compact t =
  let ok = t.lc_key and ov = t.lc_val in
  let live = ref 0 in
  Array.iteri (fun i k -> if k >= 0 && ov.(i) > t.clock then incr live) ok;
  let cap = ref 1024 in
  while !cap < 3 * !live do
    cap := 2 * !cap
  done;
  t.lc_key <- Array.make !cap (-1);
  t.lc_val <- Array.make !cap 0.0;
  t.lc_n <- 0;
  Array.iteri
    (fun i k ->
      if k >= 0 && ov.(i) > t.clock then begin
        let s = lc_probe t k in
        t.lc_key.(s) <- k;
        t.lc_val.(s) <- ov.(i);
        t.lc_n <- t.lc_n + 1
      end)
    ok

let enqueue_delivery t ~src ~dst m =
  let base = t.clock +. sample_delay t src dst in
  let reorder =
    t.faults.reorder_probability > 0.0
    && Prng.bernoulli t.rng t.faults.reorder_probability
  in
  let at =
    if reorder then begin
      (* the message straggles: extra delay, and it bypasses the FIFO
         clamp so it overtakes (or is overtaken by) later traffic *)
      t.reordered <- t.reordered + 1;
      base +. sample_delay t src dst +. (2.0 *. sample_delay t src dst)
    end
    else if t.fifo then begin
      if 2 * (t.lc_n + 1) > Array.length t.lc_key then lc_compact t;
      let key = (src * t.nodes) + dst in
      let slot = lc_probe t key in
      let prev = if t.lc_key.(slot) >= 0 then t.lc_val.(slot) else neg_infinity in
      let at = if base <= prev then prev +. 1e-9 else base in
      if t.lc_key.(slot) < 0 then begin
        t.lc_key.(slot) <- key;
        t.lc_n <- t.lc_n + 1
      end;
      t.lc_val.(slot) <- at;
      at
    end
    else base
  in
  push_deliver t at ~src ~dst m

let send t ~src ~dst m =
  if src < 0 || src >= t.nodes || dst < 0 || dst >= t.nodes then
    invalid_arg "Simnet.send: endpoint out of range";
  if not t.up.(src) then
    (* a crashed host cannot transmit; accounted separately from channel loss *)
    t.lost_to_crashes <- t.lost_to_crashes + 1
  else begin
    t.sent <- t.sent + 1;
    if t.faults.drop_probability > 0.0 && Prng.bernoulli t.rng t.faults.drop_probability
    then t.dropped <- t.dropped + 1
    else begin
      enqueue_delivery t ~src ~dst m;
      if
        t.faults.duplicate_probability > 0.0
        && Prng.bernoulli t.rng t.faults.duplicate_probability
      then enqueue_delivery t ~src ~dst m
    end
  end

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Simnet.schedule: negative delay";
  push_callback t (t.clock +. delay) f

(* ------------------------------------------------------------------ *)
(* dispatch                                                            *)
(* ------------------------------------------------------------------ *)

(* conservative-lookahead window opening: each shard's next window is a
   pure function of that wheel's own contents, so unopened windows can
   be collected and sorted concurrently through the domain pool before
   the sequential (at, seq) merge consumes them *)
let prepare_all t =
  let pending = ref 0 in
  for i = 0 to t.shards - 1 do
    if Event_wheel.needs_prepare t.wheels.(i) then incr pending
  done;
  if !pending > 1 && t.jobs > 1 then
    ignore
      (Pool.map ~jobs:(min t.jobs t.shards)
         (fun wix -> Event_wheel.prepare t.wheels.(wix))
         (Array.init t.shards (fun i -> i)))
  else if !pending > 0 then
    for i = 0 to t.shards - 1 do
      Event_wheel.prepare t.wheels.(i)
    done

(* index of the wheel holding the global (at, seq) minimum, or -1.
   seq values are globally unique, so the argmin is unambiguous and the
   merge order cannot depend on the shard count. *)
let select t =
  prepare_all t;
  let best = ref (-1) and ba = ref 0.0 and bs = ref 0 in
  for i = 0 to t.shards - 1 do
    match Event_wheel.peek_key t.wheels.(i) with
    | Some (at, seq) ->
        if !best < 0 || at < !ba || (Float.equal at !ba && seq < !bs) then begin
          best := i;
          ba := at;
          bs := seq
        end
    | None -> ()
  done;
  !best

let pop_global t =
  if t.shards = 1 then Event_wheel.pop t.wheels.(0)
  else
    let i = select t in
    if i < 0 then None else Event_wheel.pop t.wheels.(i)

let peek_global t =
  if t.shards = 1 then Event_wheel.peek_key t.wheels.(0)
  else
    let i = select t in
    if i < 0 then None else Event_wheel.peek_key t.wheels.(i)

(* deliver one message: link weather is evaluated at delivery time, so
   an episode that starts while a message is in flight still swallows
   it; a certain cut (p >= 1) consumes no randomness, keeping cut-only
   schedules delay-identical to the scheduleless run *)
let deliver_one t at ~src ~dst m =
  let cut =
    match t.outage with
    | None -> false
    | Some f ->
        let p = f ~at ~src ~dst in
        p >= 1.0 || (p > 0.0 && Prng.bernoulli t.rng p)
  in
  if cut then t.cut <- t.cut + 1
  else if not t.up.(dst) then
    (* the packet reached a crashed host: lost, like any queued data
       the host's NIC would discard *)
    t.lost_to_crashes <- t.lost_to_crashes + 1
  else begin
    t.delivered <- t.delivered + 1;
    (match t.trace with Some tr -> tr at ~src ~dst m | None -> ());
    match t.handler with
    | Some h -> h ~src ~dst m
    | None -> failwith "Simnet: message due but no handler installed"
  end

let dispatch t at pay =
  t.clock <- at;
  t.processed <- t.processed + 1;
  if pay < 0 then begin
    let i = -pay - 1 in
    let f = t.c_fn.(i) in
    cb_release t i;
    f ()
  end
  else begin
    let link = t.m_link.(pay) in
    let m = t.m_pay.(pay) in
    slot_release t pay;
    deliver_one t at ~src:(link / t.nodes) ~dst:(link mod t.nodes) m
  end

let step t =
  match pop_global t with
  | None -> false
  | Some (at, _seq, pay) ->
      dispatch t at pay;
      true

(* The hot loop batches per-node mailboxes: all deliveries sharing one
   timestamp drain in a single inner pass, in exact (at, seq) order,
   with per-message coins, traces and handler calls unchanged — the
   batch only skips the outer loop's re-entry between them.  The
   single-shard path uses the wheel's allocation-free pop protocol;
   multi-shard dispatch keeps the option-based merge (correctness path,
   its per-event cost is dominated by the argmin scan anyway). *)
let run t =
  if t.shards = 1 then begin
    let w = t.wheels.(0) in
    while Event_wheel.pop_into w do
      let at = Event_wheel.last_at w in
      dispatch t at (Event_wheel.last_pay w);
      while Event_wheel.next_at_equals w at && Event_wheel.pop_into w do
        dispatch t at (Event_wheel.last_pay w)
      done
    done
  end
  else begin
    let continue = ref true in
    while !continue do
      match pop_global t with
      | None -> continue := false
      | Some (at, _seq, pay) ->
          dispatch t at pay;
          let same = ref true in
          while !same do
            match peek_global t with
            | Some (at', _) when Float.equal at' at -> (
                match pop_global t with
                | Some (_, _, pay') -> dispatch t at pay'
                | None -> same := false)
            | _ -> same := false
          done
    done
  end

let run_until t horizon =
  let continue = ref true in
  while !continue do
    match peek_global t with
    | None -> continue := false
    | Some (at, _) when at > horizon -> continue := false
    | Some _ -> (
        match pop_global t with
        | Some (at, _seq, pay) -> dispatch t at pay
        | None -> continue := false)
  done

let pending_events t =
  let s = ref 0 in
  for i = 0 to t.shards - 1 do
    s := !s + Event_wheel.size t.wheels.(i)
  done;
  !s

let footprint_words t =
  let words = ref 0 in
  for i = 0 to t.shards - 1 do
    words := !words + Event_wheel.footprint_words t.wheels.(i)
  done;
  !words
  + (2 * Array.length t.m_link)
  + (2 * Array.length t.c_fn)
  + (2 * Array.length t.lc_key)

let messages_sent t = t.sent
let messages_delivered t = t.delivered
let messages_dropped t = t.dropped
let messages_reordered t = t.reordered
let messages_lost_to_crashes t = t.lost_to_crashes
let messages_cut t = t.cut
let crash_events t = t.crash_count
let events_processed t = t.processed
