module Prng = Owp_util.Prng

type delay_model =
  | Unit
  | Uniform of float * float
  | Exponential of float
  | PerLink of (int -> int -> float)

type faults = {
  drop_probability : float;
  duplicate_probability : float;
  reorder_probability : float;
}

let no_faults =
  { drop_probability = 0.0; duplicate_probability = 0.0; reorder_probability = 0.0 }

let faults ?(drop = 0.0) ?(duplicate = 0.0) ?(reorder = 0.0) () =
  { drop_probability = drop; duplicate_probability = duplicate; reorder_probability = reorder }

type 'm event_kind = Deliver of int * int * 'm | Callback of (unit -> unit)

type 'm event = { at : float; seq : int; kind : 'm event_kind }

module Queue_elt = struct
  type t = { at : float; seq : int }

  let compare a b =
    let c = Float.compare a.at b.at in
    if c <> 0 then c else compare a.seq b.seq
end

module Equeue = Owp_util.Heap.Make (Queue_elt)

type 'm t = {
  nodes : int;
  rng : Prng.t;
  fifo : bool;
  faults : faults;
  delay : delay_model;
  queue : Equeue.t;
  events : (int, 'm event) Hashtbl.t; (* seq -> event payload *)
  link_clock : (int * int, float) Hashtbl.t; (* last scheduled delivery per directed link *)
  up : bool array; (* crash/restart state; length max nodes 1 *)
  mutable handler : (src:int -> dst:int -> 'm -> unit) option;
  mutable trace : (float -> src:int -> dst:int -> 'm -> unit) option;
  mutable outage : (at:float -> src:int -> dst:int -> float) option;
  mutable clock : float;
  mutable next_seq : int;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable reordered : int;
  mutable lost_to_crashes : int;
  mutable cut : int;
  mutable crash_count : int;
  mutable processed : int;
}

let check_probability name p =
  if p < 0.0 || p > 1.0 then invalid_arg (Printf.sprintf "Simnet.create: %s out of range" name)

let create ?(seed = 0xC0FFEE) ?(fifo = true) ?(faults = no_faults) ~nodes ~delay () =
  if nodes < 0 then invalid_arg "Simnet.create: negative node count";
  check_probability "drop_probability" faults.drop_probability;
  check_probability "duplicate_probability" faults.duplicate_probability;
  check_probability "reorder_probability" faults.reorder_probability;
  {
    nodes;
    rng = Prng.create seed;
    fifo;
    faults;
    delay;
    queue = Equeue.create ();
    events = Hashtbl.create 1024;
    link_clock = Hashtbl.create 1024;
    up = Array.make (max nodes 1) true;
    handler = None;
    trace = None;
    outage = None;
    clock = 0.0;
    next_seq = 0;
    sent = 0;
    delivered = 0;
    dropped = 0;
    reordered = 0;
    lost_to_crashes = 0;
    cut = 0;
    crash_count = 0;
    processed = 0;
  }

let node_count t = t.nodes
let now t = t.clock
let set_handler t h = t.handler <- Some h
let set_trace t tr = t.trace <- tr
let set_outage t f = t.outage <- f

let check_node fn t v =
  if v < 0 || v >= t.nodes then invalid_arg (Printf.sprintf "Simnet.%s: node out of range" fn)

let is_up t v =
  check_node "is_up" t v;
  t.up.(v)

let crash t v =
  check_node "crash" t v;
  if t.up.(v) then begin
    t.up.(v) <- false;
    t.crash_count <- t.crash_count + 1
  end

let restart t v =
  check_node "restart" t v;
  t.up.(v) <- true

let sample_delay t src dst =
  let d =
    match t.delay with
    | Unit -> 1.0
    | Uniform (lo, hi) ->
        if hi < lo then invalid_arg "Simnet: bad uniform delay bounds";
        lo +. Prng.float t.rng (hi -. lo)
    | Exponential mean -> Prng.exponential t.rng mean
    | PerLink f -> f src dst
  in
  if d < 0.0 then invalid_arg "Simnet: negative delay";
  (* strictly positive so a message never arrives "now" *)
  Float.max d 1e-9

let push t at kind =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Hashtbl.replace t.events seq { at; seq; kind };
  Equeue.add t.queue { Queue_elt.at; seq }

let enqueue_delivery t ~src ~dst m =
  let base = t.clock +. sample_delay t src dst in
  let reorder =
    t.faults.reorder_probability > 0.0
    && Prng.bernoulli t.rng t.faults.reorder_probability
  in
  let at =
    if reorder then begin
      (* the message straggles: extra delay, and it bypasses the FIFO
         clamp so it overtakes (or is overtaken by) later traffic *)
      t.reordered <- t.reordered + 1;
      base +. sample_delay t src dst +. (2.0 *. sample_delay t src dst)
    end
    else if t.fifo then begin
      let key = (src, dst) in
      let prev = Option.value (Hashtbl.find_opt t.link_clock key) ~default:neg_infinity in
      let at = if base <= prev then prev +. 1e-9 else base in
      Hashtbl.replace t.link_clock key at;
      at
    end
    else base
  in
  push t at (Deliver (src, dst, m))

let send t ~src ~dst m =
  if src < 0 || src >= t.nodes || dst < 0 || dst >= t.nodes then
    invalid_arg "Simnet.send: endpoint out of range";
  if not t.up.(src) then
    (* a crashed host cannot transmit; accounted separately from channel loss *)
    t.lost_to_crashes <- t.lost_to_crashes + 1
  else begin
    t.sent <- t.sent + 1;
    if t.faults.drop_probability > 0.0 && Prng.bernoulli t.rng t.faults.drop_probability
    then t.dropped <- t.dropped + 1
    else begin
      enqueue_delivery t ~src ~dst m;
      if
        t.faults.duplicate_probability > 0.0
        && Prng.bernoulli t.rng t.faults.duplicate_probability
      then enqueue_delivery t ~src ~dst m
    end
  end

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Simnet.schedule: negative delay";
  push t (t.clock +. delay) (Callback f)

let dispatch t ev =
  t.clock <- ev.at;
  t.processed <- t.processed + 1;
  match ev.kind with
  | Callback f -> f ()
  | Deliver (src, dst, m) ->
      (* link-level weather is evaluated at delivery time, so an episode
         that starts while a message is in flight still swallows it; a
         certain cut (p >= 1) consumes no randomness, keeping cut-only
         schedules delay-identical to the scheduleless run *)
      let cut =
        match t.outage with
        | None -> false
        | Some f ->
            let p = f ~at:ev.at ~src ~dst in
            p >= 1.0 || (p > 0.0 && Prng.bernoulli t.rng p)
      in
      if cut then t.cut <- t.cut + 1
      else if not t.up.(dst) then
        (* the packet reached a crashed host: lost, like any queued data
           the host's NIC would discard *)
        t.lost_to_crashes <- t.lost_to_crashes + 1
      else begin
        t.delivered <- t.delivered + 1;
        (match t.trace with Some tr -> tr ev.at ~src ~dst m | None -> ());
        match t.handler with
        | Some h -> h ~src ~dst m
        | None -> failwith "Simnet: message due but no handler installed"
      end

let step t =
  match Equeue.pop_min_opt t.queue with
  | None -> false
  | Some { Queue_elt.seq; _ } ->
      let ev = Hashtbl.find t.events seq in
      Hashtbl.remove t.events seq;
      dispatch t ev;
      true

let run t = while step t do () done

let run_until t horizon =
  let continue = ref true in
  while !continue do
    match Equeue.peek_min_opt t.queue with
    | None -> continue := false
    | Some { Queue_elt.at; _ } when at > horizon -> continue := false
    | Some { Queue_elt.seq; _ } ->
        ignore (Equeue.pop_min t.queue);
        let ev = Hashtbl.find t.events seq in
        Hashtbl.remove t.events seq;
        dispatch t ev
  done

let pending_events t = Hashtbl.length t.events

let messages_sent t = t.sent
let messages_delivered t = t.delivered
let messages_dropped t = t.dropped
let messages_reordered t = t.reordered
let messages_lost_to_crashes t = t.lost_to_crashes
let messages_cut t = t.cut
let crash_events t = t.crash_count
let events_processed t = t.processed
