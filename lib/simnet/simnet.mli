(** Deterministic discrete-event message-passing simulator.

    The paper's LID protocol is asynchronous: peers exchange PROP/REJ
    messages with arbitrary (finite) delays.  This simulator provides the
    substrate — a virtual-time event queue, per-link delay models,
    optional per-link FIFO ordering, fault injection (loss, duplication,
    adversarial reordering, crash/restart) and message accounting — so
    distributed algorithms can be executed reproducibly and their
    message/latency complexity measured.

    The simulator is polymorphic in the message type ['m]; protocol
    state lives with the protocol, which registers a delivery handler. *)

type 'm t

type delay_model =
  | Unit  (** every message takes exactly 1 time unit *)
  | Uniform of float * float  (** iid uniform in [lo, hi] *)
  | Exponential of float  (** iid exponential with the given mean *)
  | PerLink of (int -> int -> float)  (** deterministic function of (src, dst) *)

type faults = {
  drop_probability : float;  (** each message lost independently *)
  duplicate_probability : float;  (** each message delivered twice *)
  reorder_probability : float;
      (** each message independently turned into a straggler: it takes
          roughly 3x its sampled delay and bypasses the per-link FIFO
          clamp, so it arrives out of order even on [fifo:true] links *)
}

val no_faults : faults

val faults : ?drop:float -> ?duplicate:float -> ?reorder:float -> unit -> faults
(** Fault record with unspecified probabilities defaulting to 0. *)

val create :
  ?seed:int ->
  ?fifo:bool ->
  ?faults:faults ->
  ?shards:int ->
  ?unsafe_lookahead:bool ->
  nodes:int ->
  delay:delay_model ->
  unit ->
  'm t
(** [fifo] (default [true]) forces per-directed-link in-order delivery by
    clamping delivery times; LID is analysed under reliable channels, and
    FIFO matches a TCP-like overlay link.  [fifo:false] is the non-FIFO
    regime: delivery order is whatever the sampled delays dictate.

    [shards] (default [1]) space-partitions the event store: nodes are
    split into [shards] contiguous ranges, each owning a bucketed event
    wheel, and dispatch merges the per-shard queues on the global
    [(at, seq)] key.  Sequence numbers are globally unique, so the merge
    order — and therefore every delivery, coin flip and counter — is
    {e bit-identical} for every shard count.  Sharding only changes
    which structures can be prepared concurrently (window opening fans
    out over OCaml domains); it is clamped to [nodes] when larger.

    [unsafe_lookahead] (default [false]) is a {e deliberately wrong}
    debug mode for gate self-tests: each wheel serves its pre-sorted
    window to exhaustion before events inserted into that window, which
    violates the [(at, seq)] order whenever a handler sends back into
    its own lookahead window (the per-link FIFO clamp does exactly
    that).  Never enable it outside the bench gate's [--inject
    lookahead] leg.

    @raise Invalid_argument on negative [nodes] or non-positive
    [shards]. *)

val node_count : _ t -> int
val shard_count : _ t -> int
(** [shard_count] is the effective count after clamping to [nodes]. *)

val now : _ t -> float
(** Current virtual time. *)

val set_handler : 'm t -> (src:int -> dst:int -> 'm -> unit) -> unit
(** Must be installed before [run].  The handler may call {!send}. *)

val send : 'm t -> src:int -> dst:int -> 'm -> unit
(** Enqueue a message for future delivery (subject to faults).  A send
    from a crashed node is silently discarded (the host is down). *)

val schedule : 'm t -> delay:float -> (unit -> unit) -> unit
(** Run a callback at [now + delay] — used for churn events and timers.
    Callbacks fire regardless of crash state: they model layer-local
    timers whose owners must consult {!is_up} themselves. *)

(** {2 Crash/restart fault model}

    A node can crash at any point in virtual time and optionally restart
    later.  While down it neither transmits (sends are discarded) nor
    receives (packets arriving during the outage are lost).  Restart
    brings the interface back up; any {e volatile} state a layer kept
    for the node is the layer's responsibility to clear (see
    {!Transport.restart_node}). *)

val crash : _ t -> int -> unit
(** Take a node down at the current virtual time.  Idempotent. *)

val restart : _ t -> int -> unit
(** Bring a crashed node back up.  Idempotent. *)

val is_up : _ t -> int -> bool

val run : 'm t -> unit
(** Process events until quiescence.
    @raise Failure if no handler was installed and a message is due. *)

val run_until : 'm t -> float -> unit
(** Process events with time <= the horizon; later events remain queued. *)

val pending_events : _ t -> int
(** Events (deliveries and timer callbacks) still queued — after
    {!run_until} this is the in-flight work a deadline cut off. *)

val footprint_words : _ t -> int
(** Words of event-store backing memory currently allocated: the
    per-shard wheels plus the message/callback arenas and the live
    link-clock table.  Proportional to the high-water mark of in-flight
    events, never to the total traffic that ever passed through — the
    quantity the serve-session memory assertions bound. *)

val step : 'm t -> bool
(** Deliver exactly one event; [false] when the queue is empty. *)

(** {2 Accounting} *)

val messages_sent : _ t -> int
val messages_delivered : _ t -> int

val messages_dropped : _ t -> int
(** Messages lost to the channel ([drop_probability]), not counting
    crash-related loss. *)

val messages_reordered : _ t -> int
(** Messages turned into stragglers by [reorder_probability]. *)

val messages_lost_to_crashes : _ t -> int
(** Sends from a down node plus arrivals at a down node. *)

val messages_cut : _ t -> int
(** Deliveries swallowed by the {!set_outage} hook (scheduled network
    weather), not counting i.i.d. channel loss or crash loss. *)

val crash_events : _ t -> int
(** Number of {!crash} transitions (up -> down). *)

val events_processed : _ t -> int

val set_trace : 'm t -> (float -> src:int -> dst:int -> 'm -> unit) option -> unit
(** Observation hook invoked at each delivery. *)

val set_outage : 'm t -> (at:float -> src:int -> dst:int -> float) option -> unit
(** Time-varying link weather (see {!Schedule}): the hook maps a
    delivery [(at, src, dst)] to an extra loss probability — [1.0]
    cuts the delivery deterministically (no randomness consumed),
    [0 < p < 1] tosses the simulator's coin, [0.] lets it through.
    Evaluated when the message would {e arrive}, so an episode starting
    mid-flight still swallows it.  Cut messages count in
    {!messages_cut}. *)
