(** Adversary models for Byzantine fault injection.

    The paper's §7 leaves "disruptive nodes" open: every peer that
    speaks is trusted to follow Algorithm LID and to report its half of
    the symmetric weight (eq. 9) honestly.  This module names the ways a
    peer can break that trust and assigns adversary roles to nodes of a
    simulated overlay.  The models are protocol-agnostic: the concrete
    wire behaviour of each model is supplied by the protocol layer
    ({!Owp_core.Stack}'s adversary layer) as a {!behaviour}, so the same
    machinery can drive other protocols later.

    Nothing here decides how adversaries are {e detected} — that is the
    guard's job ({!Owp_core.Guard}). *)

type model =
  | Weight_liar of float
      (** Advertises an inflated ΔS̄ half-weight to jump its peers'
          ranking queues.  The float is the relative inflation above the
          structural bound 1/b: the advertised half is
          [(1 + inflation) / b], which no honest node can reach. *)
  | Equivocator
      (** Accepts (and thereby locks) every proposal it receives and
          proposes to all neighbours, consuming far more partner slots
          than its quota [b_i] allows.  Each individual link interaction
          is legal LID behaviour — equivocation is invisible to a purely
          local guard (a documented limit). *)
  | Flooder of int
      (** Never answers its protocol obligations; instead every receipt
          triggers [sweeps] full rounds of PROP spam over all its
          neighbours.  Spam is budget-bounded so that two adjacent
          flooders cannot amplify each other forever. *)
  | Replayer
      (** Behaves like a lazy honest node but re-sends copies of earlier
          messages (duplicates and stale-epoch replays) past the
          transport layer's dedup. *)
  | State_violator
      (** Breaks the per-link protocol state machine: proposes to
          strangers, rejects after locking, and never answers proposals
          directed at it (a liveness violation — unguarded peers starve
          waiting for its reply). *)

val default_of_name : string -> model option
(** Recognises [liar], [equivocator]/[equiv], [flooder]/[flood],
    [replayer]/[replay], [violator] (with default parameters). *)

val name : model -> string
(** Short CLI name of the model (parameter-free). *)

val describe : model -> string
(** One-line human description, parameters included. *)

val all_defaults : model list
(** One instance of every model with default parameters. *)

val parse_spec : string -> (model * float) list
(** Parses a CLI adversary spec [MODEL:FRAC[,MODEL:FRAC...]], e.g.
    ["liar:0.2"] or ["liar:0.1,flooder:0.05"].  [FRAC] is the fraction
    of nodes (in [(0, 1]]) to corrupt with that model.
    @raise Invalid_argument on malformed specs. *)

val assign :
  Owp_util.Prng.t -> n:int -> (model * float) list -> model option array
(** Randomly assigns adversary roles over [n] nodes.  Each [(m, frac)]
    entry corrupts [round (frac * n)] nodes (at least one when
    [frac > 0]); assignments never overlap and at least one node is
    always left correct.  @raise Invalid_argument if the requested
    fractions cannot fit. *)

(** {2 Behaviour hook}

    A node taken over by an adversary no longer runs the protocol's
    state machine; the simulation driver routes its traffic to a
    behaviour instead.  ['m] is the wire message type. *)

type 'm behaviour = {
  on_init : send:(dst:int -> 'm -> unit) -> unit;
      (** Called once when the simulation starts (in node-id order,
          before any delivery). *)
  on_receive : src:int -> 'm -> send:(dst:int -> 'm -> unit) -> unit;
      (** Called for every message delivered to the adversary node. *)
}

val silent : 'm behaviour
(** The do-nothing behaviour (a crashed-from-start peer). *)
