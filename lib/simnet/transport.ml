module Prng = Owp_util.Prng

type 'm frame =
  | Data of { epoch : int; seq : int; payload : 'm }
  | Ack of { epoch : int; cum : int }

type config = {
  rto_initial : float;
  rto_backoff : float;
  rto_max : float;
  rto_jitter : float;
  max_retries : int;
}

let default_config =
  { rto_initial = 4.0; rto_backoff = 1.6; rto_max = 48.0; rto_jitter = 0.25; max_retries = 24 }

(* Sender half of a directed link: the retransmission window. *)
type 'm sender = {
  s_epoch : int; (* local incarnation the stream belongs to *)
  mutable next_seq : int;
  unacked : (int, 'm) Hashtbl.t; (* seq -> payload, everything not yet cum-acked *)
  mutable rto : float;
  mutable retries : int; (* consecutive timer firings without ack progress *)
  mutable timer_armed : bool;
  mutable s_dead : bool; (* gave up: peer declared dead for this link *)
  mutable s_suspected : bool; (* give-up held by an outage episode *)
}

(* Receiver half of a directed link: dedup + in-order reassembly. *)
type 'm receiver = {
  mutable r_epoch : int; (* peer incarnation this state tracks *)
  mutable cum : int; (* highest in-order-delivered seq; -1 before any *)
  ooo : (int, 'm) Hashtbl.t; (* out-of-order buffer *)
}

type 'm t = {
  net : 'm frame Simnet.t;
  config : config;
  jitter_rng : Prng.t;
  epochs : int array; (* per-node incarnation, bumped by restart_node *)
  senders : (int * int, 'm sender) Hashtbl.t; (* (src, dst) *)
  receivers : (int * int, 'm receiver) Hashtbl.t; (* (src, dst); state lives at dst *)
  on_deliver : src:int -> dst:int -> 'm -> unit;
  on_peer_dead : node:int -> peer:int -> unit;
  hold : node:int -> peer:int -> bool;
  mutable data_sent : int;
  mutable retransmissions : int;
  mutable acks_sent : int;
  mutable duplicates_suppressed : int;
  mutable peers_declared_dead : int;
  mutable links_suspected : int;
  mutable links_resumed : int;
  mutable give_ups_held : int;
}

let validate_config c =
  if c.rto_initial <= 0.0 then invalid_arg "Transport: rto_initial must be positive";
  if c.rto_backoff < 1.0 then invalid_arg "Transport: rto_backoff must be >= 1";
  if c.rto_max < c.rto_initial then invalid_arg "Transport: rto_max below rto_initial";
  if c.rto_jitter < 0.0 then invalid_arg "Transport: negative rto_jitter";
  if c.max_retries < 0 then invalid_arg "Transport: negative max_retries"

let sender_state t ~src ~dst =
  let key = (src, dst) in
  match Hashtbl.find_opt t.senders key with
  | Some s when s.s_epoch = t.epochs.(src) -> s
  | _ ->
      (* first use, or a stale pre-restart stream: start a fresh one *)
      let s =
        {
          s_epoch = t.epochs.(src);
          next_seq = 0;
          unacked = Hashtbl.create 8;
          rto = t.config.rto_initial;
          retries = 0;
          timer_armed = false;
          s_dead = false;
          s_suspected = false;
        }
      in
      Hashtbl.replace t.senders key s;
      s

let receiver_state t ~src ~dst ~epoch =
  let key = (src, dst) in
  match Hashtbl.find_opt t.receivers key with
  | Some r -> r
  | None ->
      let r = { r_epoch = epoch; cum = -1; ooo = Hashtbl.create 8 } in
      Hashtbl.replace t.receivers key r;
      r

let jittered t d =
  if t.config.rto_jitter <= 0.0 then d
  else d *. (1.0 +. Prng.float t.jitter_rng t.config.rto_jitter)

let transmit_data t ~src ~dst s seq payload =
  Simnet.send t.net ~src ~dst (Data { epoch = s.s_epoch; seq; payload })

let give_up t ~src ~dst s =
  s.s_dead <- true;
  Hashtbl.reset s.unacked;
  t.peers_declared_dead <- t.peers_declared_dead + 1;
  t.on_peer_dead ~node:src ~peer:dst

(* Retransmission timer for link (src, dst).  The closure captures the
   sender record; [==] against the table entry invalidates timers that
   survived a crash-restart (which replaces the record). *)
let rec arm_timer t ~src ~dst s =
  if not s.timer_armed then begin
    s.timer_armed <- true;
    Simnet.schedule t.net ~delay:(jittered t s.rto) (fun () ->
        match Hashtbl.find_opt t.senders (src, dst) with
        (* owp-lint: allow float-compare — record identity, floats never read *)
        | Some s' when s' == s ->
            s.timer_armed <- false;
            if (not s.s_dead) && Hashtbl.length s.unacked > 0 && Simnet.is_up t.net src
            then begin
              let resend () =
                s.rto <- Float.min (s.rto *. t.config.rto_backoff) t.config.rto_max;
                (* go-back-N: resend the whole window, lowest seq first *)
                let seqs =
                  List.sort compare
                    (Hashtbl.fold (fun k _ acc -> k :: acc) s.unacked [])
                in
                List.iter
                  (fun seq ->
                    t.retransmissions <- t.retransmissions + 1;
                    transmit_data t ~src ~dst s seq (Hashtbl.find s.unacked seq))
                  seqs;
                arm_timer t ~src ~dst s
              in
              if s.retries >= t.config.max_retries then begin
                if t.hold ~node:src ~peer:dst then begin
                  (* a scheduled outage explains the silence: suspect the
                     link instead of declaring the peer dead, refresh the
                     retry budget, and keep the window retransmitting at
                     the capped RTO so the stream resumes by itself once
                     the network heals — re-announce, not amnesia *)
                  if not s.s_suspected then begin
                    s.s_suspected <- true;
                    t.links_suspected <- t.links_suspected + 1
                  end;
                  t.give_ups_held <- t.give_ups_held + 1;
                  s.retries <- 0;
                  resend ()
                end
                else give_up t ~src ~dst s
              end
              else begin
                s.retries <- s.retries + 1;
                resend ()
              end
            end
        | _ -> () (* stale timer from a pre-restart incarnation *))
  end

let send t ~src ~dst payload =
  if Simnet.is_up t.net src then begin
    let s = sender_state t ~src ~dst in
    if not s.s_dead then begin
      let seq = s.next_seq in
      s.next_seq <- seq + 1;
      Hashtbl.replace s.unacked seq payload;
      t.data_sent <- t.data_sent + 1;
      transmit_data t ~src ~dst s seq payload;
      arm_timer t ~src ~dst s
    end
  end

let send_ack t ~src ~dst ~epoch ~cum =
  t.acks_sent <- t.acks_sent + 1;
  Simnet.send t.net ~src ~dst (Ack { epoch; cum })

let handle_data t ~src ~dst ~epoch ~seq payload =
  let r = receiver_state t ~src ~dst ~epoch in
  if epoch < r.r_epoch then () (* frame from a dead incarnation of the peer *)
  else begin
    if epoch > r.r_epoch then begin
      (* peer restarted: its stream starts over from seq 0 *)
      r.r_epoch <- epoch;
      r.cum <- -1;
      Hashtbl.reset r.ooo
    end;
    if seq <= r.cum || Hashtbl.mem r.ooo seq then begin
      (* duplicate (network-level or retransmission): suppress, but
         re-ack so the sender stops retransmitting *)
      t.duplicates_suppressed <- t.duplicates_suppressed + 1;
      send_ack t ~src:dst ~dst:src ~epoch ~cum:r.cum
    end
    else begin
      Hashtbl.replace r.ooo seq payload;
      (* drain the contiguous prefix to the application, in order *)
      let continue = ref true in
      while !continue do
        match Hashtbl.find_opt r.ooo (r.cum + 1) with
        | None -> continue := false
        | Some p ->
            Hashtbl.remove r.ooo (r.cum + 1);
            r.cum <- r.cum + 1;
            t.on_deliver ~src ~dst p
      done;
      send_ack t ~src:dst ~dst:src ~epoch ~cum:r.cum
    end
  end

let handle_ack t ~src ~dst ~epoch ~cum =
  (* [src] acked stream (dst -> src); the window lives at [dst] *)
  match Hashtbl.find_opt t.senders (dst, src) with
  | Some s when s.s_epoch = epoch && not s.s_dead ->
      let progressed = ref false in
      (* owp-lint: allow hash-order — existence check, commutative *)
      Hashtbl.iter
        (fun seq _ -> if seq <= cum then progressed := true)
        s.unacked;
      if !progressed then begin
        (* owp-lint: allow hash-order — every collected key is removed *)
        let stale = Hashtbl.fold (fun k _ acc -> if k <= cum then k :: acc else acc) s.unacked [] in
        List.iter (Hashtbl.remove s.unacked) stale;
        (* forward progress: the peer is alive, reset the backoff *)
        s.retries <- 0;
        s.rto <- t.config.rto_initial;
        if s.s_suspected then begin
          (* the first ACK through a healed link clears the suspicion *)
          s.s_suspected <- false;
          t.links_resumed <- t.links_resumed + 1
        end
      end
  | _ -> ()

let create ?(config = default_config) ?(jitter_seed = 0x7A5)
    ?(hold = fun ~node:_ ~peer:_ -> false) net ~on_deliver ~on_peer_dead =
  validate_config config;
  let t =
    {
      net;
      config;
      jitter_rng = Prng.create jitter_seed;
      epochs = Array.make (max (Simnet.node_count net) 1) 0;
      senders = Hashtbl.create 64;
      receivers = Hashtbl.create 64;
      on_deliver;
      on_peer_dead;
      hold;
      data_sent = 0;
      retransmissions = 0;
      acks_sent = 0;
      duplicates_suppressed = 0;
      peers_declared_dead = 0;
      links_suspected = 0;
      links_resumed = 0;
      give_ups_held = 0;
    }
  in
  Simnet.set_handler net (fun ~src ~dst frame ->
      match frame with
      | Data { epoch; seq; payload } -> handle_data t ~src ~dst ~epoch ~seq payload
      | Ack { epoch; cum } -> handle_ack t ~src ~dst ~epoch ~cum);
  t

let restart_node t v =
  if v < 0 || v >= Array.length t.epochs then
    invalid_arg "Transport.restart_node: node out of range";
  (* volatile transport state is lost with the crash; the epoch bump is
     the non-volatile part (think boot counter) that lets peers tell old
     frames from new ones *)
  t.epochs.(v) <- t.epochs.(v) + 1;
  let stale tbl pick =
    (* owp-lint: allow hash-order — every collected key is removed *)
    Hashtbl.fold (fun k _ acc -> if pick k then k :: acc else acc) tbl []
  in
  List.iter (Hashtbl.remove t.senders) (stale t.senders (fun (src, _) -> src = v));
  List.iter (Hashtbl.remove t.receivers) (stale t.receivers (fun (_, dst) -> dst = v))

let peer_dead t ~node ~peer =
  match Hashtbl.find_opt t.senders (node, peer) with
  | Some s -> s.s_dead
  | None -> false

let data_sent t = t.data_sent
let retransmissions t = t.retransmissions
let acks_sent t = t.acks_sent
let duplicates_suppressed t = t.duplicates_suppressed
let peers_declared_dead t = t.peers_declared_dead
let links_suspected t = t.links_suspected
let links_resumed t = t.links_resumed
let give_ups_held t = t.give_ups_held
let frames_sent t = t.data_sent + t.retransmissions + t.acks_sent
