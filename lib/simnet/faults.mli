(** The unified fault model of a simulated run.

    Until PR 4 every fault knob travelled as its own optional argument
    (drop/dup/reorder probabilities, FIFO flag, crash fraction, patience
    timer) through [bin/owp.ml], the reliable driver and the
    experiment harness, each with its own defaults.  This record is the
    single source of truth: one value describes the whole environment a
    run executes in, with one parser and one printer shared by
    [owp run], [owp check] and the benchmark harness.

    The channel-level subset ({!field-drop}, {!field-duplicate},
    {!field-reorder}) converts to the event-level {!Simnet.faults}
    record via {!channel}; the host-level knobs ({!field-crash},
    {!field-patience}) and the ordering regime ({!field-fifo}) are
    consumed by the drivers themselves. *)

type t = {
  drop : float;  (** per-message loss probability *)
  duplicate : float;  (** per-message duplication probability *)
  reorder : float;  (** per-message straggler probability (breaks FIFO) *)
  fifo : bool;  (** per-directed-link in-order delivery (default on) *)
  crash : float;  (** fraction of peers that fail-stop mid-run *)
  patience : float option;
      (** protocol-level wait timeout (virtual time); [None] preserves
          exactness under pure channel faults *)
}

val none : t
(** Fault-free FIFO network: all probabilities 0, no crashes, no timer. *)

val equal : t -> t -> bool
(** Field-wise equality via [Float.equal] (the record carries floats,
    so polymorphic [=] is off limits). *)

val make :
  ?drop:float ->
  ?duplicate:float ->
  ?reorder:float ->
  ?fifo:bool ->
  ?crash:float ->
  ?patience:float ->
  unit ->
  t
(** Unspecified fields default to {!none}'s values. *)

val channel : t -> Simnet.faults
(** The channel-fault subset, as {!Simnet.create} consumes it. *)

val channel_faulty : t -> bool
(** Any of drop/duplicate/reorder positive, or FIFO disabled — i.e. the
    plain datagram protocol would need the reliable transport. *)

val any : t -> bool
(** [channel_faulty] or a positive crash fraction. *)

val default_crash_patience : float
(** The patience {!effective_patience} falls back to when crashes are
    in play and none was given explicitly: 60.0 virtual seconds —
    comfortably above the reliable transport's worst-case
    bounded-retry window (so a live peer behind a lossy channel is
    answered before the timer fires) while keeping crash runs from
    waiting on dead peers much longer than that window. *)

val effective_patience : t -> float option
(** The patience a driver should arm: the explicit one when given,
    {!default_crash_patience} when crashes are in play (a crashed peer
    never answers, so some protocol-level timeout is mandatory for
    liveness), [None] otherwise. *)

val validate : t -> (t, string) result
(** Range checks: probabilities and the crash fraction in [0, 1],
    patience positive. *)

val of_string : string -> (t, string) result
(** Parse the compact spec used by [--faults]: comma-separated
    [drop=P], [dup=P], [reorder=P], [crash=F], [patience=T], and the
    bare flags [unordered] (FIFO off) and [fifo]; ["none"] or the empty
    string is {!none}.  Example: ["drop=0.2,dup=0.1,unordered"]. *)

val to_string : t -> string
(** Canonical spec; omits default fields, ["none"] when fault-free.
    [of_string (to_string t) = Ok t]. *)

val pp : Format.formatter -> t -> unit
