(** The seeded arrival process of a serve session: `RATE[:MIX]`.

    One spec string describes the whole request stream a sustained-run
    session faces — the Poisson arrival rate, the request mix, the
    virtual-time horizon and the queueing knobs — with one parser and
    one printer in the {!Owp_simnet.Faults}/{!Owp_simnet.Schedule}
    style, e.g. [4], [2.5:query=3], or
    [8:join=1,leave=1,repref=0,horizon=300,queue=32].

    All times and rates are in {e virtual} (simulation) time units. *)

type t = {
  rate : float;  (** mean arrivals per virtual-time unit (Poisson) *)
  join : float;  (** mix weight of membership joins (default 1) *)
  leave : float;  (** mix weight of membership leaves (default 1) *)
  repref : float;  (** mix weight of re-preference events (default 2) *)
  query : float;  (** mix weight of satisfaction queries (default 6) *)
  horizon : float;  (** virtual-time length of the session (default 100) *)
  queue : int;  (** backlog bound before shedding (default 64) *)
  oracle : float;  (** LIC-oracle sampling period (default 20) *)
  warmup : float;
      (** fraction of the horizon excluded from steady-state accounting
          (default 0.25) *)
}

val default : t
(** Rate 1, mix join 1 / leave 1 / repref 2 / query 6, horizon 100,
    queue 64, oracle 20, warmup 0.25. *)

val make :
  ?rate:float ->
  ?join:float ->
  ?leave:float ->
  ?repref:float ->
  ?query:float ->
  ?horizon:float ->
  ?queue:int ->
  ?oracle:float ->
  ?warmup:float ->
  unit ->
  t

val equal : t -> t -> bool

val validate : t -> (t, string) result
(** Positive rate/horizon/oracle, non-negative mix weights with a
    positive sum, queue >= 1, warmup in [0, 1). *)

val of_string : string -> (t, string) result
(** Parse `RATE[:field,...]`, [validate]d; fields are [k=v] pairs named
    after the record fields. *)

val to_string : t -> string
(** Canonical rendering: the rate, then only the non-default fields.
    Round-trips through {!of_string}. *)

val pp : Format.formatter -> t -> unit
