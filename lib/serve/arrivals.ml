(* The seeded arrival process spec: `RATE[:MIX]`, one parser and one
   printer in the Faults/Schedule style, so a serve scenario is a
   single copyable token on the command line. *)

type t = {
  rate : float;
  join : float;
  leave : float;
  repref : float;
  query : float;
  horizon : float;
  queue : int;
  oracle : float;
  warmup : float;
}

let default =
  {
    rate = 1.0;
    join = 1.0;
    leave = 1.0;
    repref = 2.0;
    query = 6.0;
    horizon = 100.0;
    queue = 64;
    oracle = 20.0;
    warmup = 0.25;
  }

let make ?(rate = default.rate) ?(join = default.join) ?(leave = default.leave)
    ?(repref = default.repref) ?(query = default.query)
    ?(horizon = default.horizon) ?(queue = default.queue)
    ?(oracle = default.oracle) ?(warmup = default.warmup) () =
  { rate; join; leave; repref; query; horizon; queue; oracle; warmup }

let equal a b =
  Float.equal a.rate b.rate
  && Float.equal a.join b.join
  && Float.equal a.leave b.leave
  && Float.equal a.repref b.repref
  && Float.equal a.query b.query
  && Float.equal a.horizon b.horizon
  && Int.equal a.queue b.queue
  && Float.equal a.oracle b.oracle
  && Float.equal a.warmup b.warmup

let validate t =
  let pos name v =
    if v <= 0.0 then Error (Printf.sprintf "%s must be positive" name) else Ok ()
  in
  let weight name v =
    if v < 0.0 then Error (Printf.sprintf "%s weight must be >= 0" name) else Ok ()
  in
  let ( let* ) = Result.bind in
  let* () = pos "rate" t.rate in
  let* () = weight "join" t.join in
  let* () = weight "leave" t.leave in
  let* () = weight "repref" t.repref in
  let* () = weight "query" t.query in
  let* () =
    if t.join +. t.leave +. t.repref +. t.query <= 0.0 then
      Error "mix weights sum to zero"
    else Ok ()
  in
  let* () = pos "horizon" t.horizon in
  let* () =
    if t.queue < 1 then Error "queue must be >= 1" else Ok ()
  in
  let* () = pos "oracle" t.oracle in
  if t.warmup < 0.0 || t.warmup >= 1.0 then Error "warmup must be in [0, 1)"
  else Ok t

let of_string s =
  let s = String.trim (String.lowercase_ascii s) in
  if s = "" then Error "empty arrival spec"
  else begin
    let rate_part, fields_part =
      match String.index_opt s ':' with
      | None -> (s, "")
      | Some i ->
          (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    in
    match float_of_string_opt (String.trim rate_part) with
    | None -> Error (Printf.sprintf "bad arrival rate %S" rate_part)
    | Some rate ->
        let parse_field acc item =
          Result.bind acc (fun t ->
              let fail () = Error (Printf.sprintf "bad arrival field %S" item) in
              let fl v k =
                match float_of_string_opt v with Some f -> Ok (k f) | None -> fail ()
              in
              match String.split_on_char '=' (String.trim item) with
              | [ "join"; v ] -> fl v (fun f -> { t with join = f })
              | [ "leave"; v ] -> fl v (fun f -> { t with leave = f })
              | [ "repref"; v ] -> fl v (fun f -> { t with repref = f })
              | [ "query"; v ] -> fl v (fun f -> { t with query = f })
              | [ "horizon"; v ] -> fl v (fun f -> { t with horizon = f })
              | [ "queue"; v ] -> (
                  match int_of_string_opt v with
                  | Some q -> Ok { t with queue = q }
                  | None -> fail ())
              | [ "oracle"; v ] -> fl v (fun f -> { t with oracle = f })
              | [ "warmup"; v ] -> fl v (fun f -> { t with warmup = f })
              | _ -> fail ())
        in
        let fields =
          if String.trim fields_part = "" then []
          else String.split_on_char ',' fields_part
        in
        Result.bind
          (List.fold_left parse_field (Ok { default with rate }) fields)
          validate
  end

(* shortest float rendering that round-trips through the parser *)
let fcell f = Printf.sprintf "%.12g" f

let to_string t =
  let fields =
    List.concat
      [
        (if not (Float.equal t.join default.join) then [ "join=" ^ fcell t.join ]
         else []);
        (if not (Float.equal t.leave default.leave) then
           [ "leave=" ^ fcell t.leave ]
         else []);
        (if not (Float.equal t.repref default.repref) then
           [ "repref=" ^ fcell t.repref ]
         else []);
        (if not (Float.equal t.query default.query) then
           [ "query=" ^ fcell t.query ]
         else []);
        (if not (Float.equal t.horizon default.horizon) then
           [ "horizon=" ^ fcell t.horizon ]
         else []);
        (if t.queue <> default.queue then
           [ "queue=" ^ string_of_int t.queue ]
         else []);
        (if not (Float.equal t.oracle default.oracle) then
           [ "oracle=" ^ fcell t.oracle ]
         else []);
        (if not (Float.equal t.warmup default.warmup) then
           [ "warmup=" ^ fcell t.warmup ]
         else []);
      ]
  in
  match fields with
  | [] -> fcell t.rate
  | fs -> fcell t.rate ^ ":" ^ String.concat "," fs

let pp ppf t = Format.pp_print_string ppf (to_string t)
