(* The sustained-traffic serving engine: a long-lived session feeding
   the composed stack a continuous request stream.

   The session is a serial queue in virtual time.  Requests arrive by a
   seeded Poisson process (Arrivals.rate); each admitted request is
   serviced to completion before the next starts, so latency = queue
   wait + service.  A mutation request (join / leave / re-preference)
   is serviced by re-running the configured engine composition —
   Pipeline.run_config with the session's current capacity vector — and
   its service time is that run's virtual completion time; a query is
   one propose-answer round.  Every latency figure is virtual: the
   serving layer never reads a wall clock (the clock-hygiene lint rule
   enforces this for the whole lib/serve tree).

   Periodically the session evaluates a from-scratch LIC oracle on the
   current membership and compares the served matching's satisfaction
   against it; the tail samples (past the warmup fraction) average into
   the steady-state satisfaction figure the report carries. *)

module RC = Owp_core.Run_config
module Pipeline = Owp_core.Pipeline
module Stack = Owp_core.Stack
module Prng = Owp_util.Prng

type kind = Join | Leave | Repref | Query

type request = { at : float; kind : kind; target : int }

(* per-kind request handlers share the stack layers' record discipline:
   the full shape spelled out, a real counter row each (the
   layer-conformance rule checks both) *)
type handler = {
  on_request : request -> float;  (** service time, virtual units *)
  counters : unit -> (string * int) list;
}

(* one propose-answer round under the stack's default delay model: the
   service cost of a read-only query *)
let query_service = Stack.round_length (Owp_simnet.Simnet.Uniform (0.5, 1.5))

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

(* deterministic per-request seed stream: distinct runs of the engine
   inside one session must not share trajectories, replays must *)
let request_seed base idx = base lxor (0x5E4E + (7919 * idx))

let generate_requests arrivals ~seed ~n =
  let rng = Prng.create (seed lxor 0xA441) in
  let total =
    arrivals.Arrivals.join +. arrivals.Arrivals.leave +. arrivals.Arrivals.repref
    +. arrivals.Arrivals.query
  in
  let pick_kind () =
    let u = Prng.float rng total in
    if u < arrivals.Arrivals.join then Join
    else if u < arrivals.Arrivals.join +. arrivals.Arrivals.leave then Leave
    else if
      u < arrivals.Arrivals.join +. arrivals.Arrivals.leave +. arrivals.Arrivals.repref
    then Repref
    else Query
  in
  let rec go t acc =
    let t = t +. Prng.exponential rng (1.0 /. arrivals.Arrivals.rate) in
    if t > arrivals.Arrivals.horizon then List.rev acc
    else go t ({ at = t; kind = pick_kind (); target = Prng.int rng n } :: acc)
  in
  go 0.0 []

let run ?(handicap = 0.0) ~arrivals cfg prefs =
  match
    ( RC.validate cfg,
      Arrivals.validate arrivals,
      RC.lid_family cfg.RC.engine,
      handicap >= 0.0 )
  with
  | Error msg, _, _, _ -> Error ("config: " ^ msg)
  | _, Error msg, _, _ -> Error ("arrivals: " ^ msg)
  | _, _, false, _ ->
      Error
        (Printf.sprintf
           "serve drives the protocol stack; engine %s has no protocol run \
            (pick lid, lid-reliable or lid-byzantine)"
           (RC.engine_name cfg.RC.engine))
  | _, _, _, false -> Error "handicap must be >= 0"
  | Ok cfg, Ok arrivals, true, true ->
      let g = Preference.graph prefs in
      let n = Graph.node_count g in
      let quota = Array.init n (Preference.quota prefs) in
      let active = Array.make n true in
      let lists = Array.init n (fun i -> Array.copy (Preference.list prefs i)) in
      let cur = ref prefs in
      let shuffle_rng = Prng.create (cfg.RC.seed lxor 0x5EF5) in
      let capacity_now () =
        Array.init n (fun i -> if active.(i) then quota.(i) else 0)
      in
      let runs = ref 0 in
      let engine_run () =
        incr runs;
        let rcfg = { cfg with RC.seed = request_seed cfg.RC.seed !runs } in
        Pipeline.run_config ~capacity:(capacity_now ()) rcfg !cur
      in
      (* bootstrap: the standing matching a session starts from *)
      let outcome = ref (Pipeline.run_config cfg prefs) in
      let service_of_run (out : Pipeline.outcome) =
        match out.Pipeline.rounds with Some t -> t | None -> query_service
      in
      let mutate () =
        let out = engine_run () in
        outcome := out;
        service_of_run out
      in
      let joins = ref 0 and leaves = ref 0 and reprefs = ref 0 and queries = ref 0 in
      let join_handler =
        {
          on_request =
            (fun r ->
              incr joins;
              if active.(r.target) then query_service (* no-op join *)
              else begin
                active.(r.target) <- true;
                mutate ()
              end);
          counters = (fun () -> [ ("join", !joins) ]);
        }
      in
      let leave_handler =
        {
          on_request =
            (fun r ->
              incr leaves;
              let live = Array.fold_left (fun a b -> if b then a + 1 else a) 0 active in
              if (not active.(r.target)) || live <= 1 then query_service
              else begin
                active.(r.target) <- false;
                mutate ()
              end);
          counters = (fun () -> [ ("leave", !leaves) ]);
        }
      in
      let repref_handler =
        {
          on_request =
            (fun r ->
              incr reprefs;
              if Array.length lists.(r.target) < 2 then query_service
              else begin
                Prng.shuffle_in_place shuffle_rng lists.(r.target);
                cur := Preference.create g ~quota ~lists;
                mutate ()
              end);
          counters = (fun () -> [ ("repref", !reprefs) ]);
        }
      in
      let query_handler =
        {
          on_request =
            (fun _ ->
              incr queries;
              query_service);
          counters = (fun () -> [ ("query", !queries) ]);
        }
      in
      let handler_of = function
        | Join -> join_handler
        | Leave -> leave_handler
        | Repref -> repref_handler
        | Query -> query_handler
      in
      (* the LIC oracle: from-scratch centralized ideal on the current
         membership, compared on total satisfaction *)
      let oracle_cfg = RC.make ~engine:RC.Lic ~seed:cfg.RC.seed () in
      let oracle_samples = ref 0 and steady_sum = ref 0.0 and steady_n = ref 0 in
      let sample_oracle at =
        incr oracle_samples;
        let ideal =
          Pipeline.run_config ~capacity:(capacity_now ()) oracle_cfg !cur
        in
        let served = !outcome.Pipeline.total_satisfaction in
        let ratio =
          if ideal.Pipeline.total_satisfaction <= 0.0 then 1.0
          else served /. ideal.Pipeline.total_satisfaction
        in
        if at >= arrivals.Arrivals.warmup *. arrivals.Arrivals.horizon then begin
          steady_sum := !steady_sum +. ratio;
          incr steady_n
        end
      in
      let requests = generate_requests arrivals ~seed:cfg.RC.seed ~n in
      let offered = List.length requests in
      let shed = ref 0 and served = ref 0 in
      let latencies = ref [] and services = ref [] in
      let server_free = ref 0.0 and busy = ref 0.0 and max_queue = ref 0 in
      let backlog = Queue.create () in
      let next_sample = ref arrivals.Arrivals.oracle in
      List.iter
        (fun r ->
          while !next_sample <= r.at do
            sample_oracle !next_sample;
            next_sample := !next_sample +. arrivals.Arrivals.oracle
          done;
          (* completions at or before this arrival have drained *)
          while (not (Queue.is_empty backlog)) && Queue.peek backlog <= r.at do
            ignore (Queue.pop backlog)
          done;
          if Queue.length backlog >= arrivals.Arrivals.queue then incr shed
          else begin
            let start = Float.max r.at !server_free in
            let service = (handler_of r.kind).on_request r +. handicap in
            let completion = start +. service in
            server_free := completion;
            busy := !busy +. service;
            Queue.push completion backlog;
            max_queue := max !max_queue (Queue.length backlog);
            incr served;
            services := service :: !services;
            latencies := (completion -. r.at) :: !latencies
          end)
        requests;
      while !next_sample <= arrivals.Arrivals.horizon do
        sample_oracle !next_sample;
        next_sample := !next_sample +. arrivals.Arrivals.oracle
      done;
      let lat = Array.of_list (List.rev !latencies) in
      Array.sort Float.compare lat;
      let mean_service =
        if !served = 0 then 0.0
        else List.fold_left ( +. ) 0.0 !services /. float_of_int !served
      in
      (* the per-kind table is read through the handlers' counter rows,
         like a stack layer's *)
      let table =
        List.concat_map
          (fun h -> h.counters ())
          [ join_handler; leave_handler; repref_handler; query_handler ]
      in
      let count k = try List.assoc k table with Not_found -> 0 in
      let report =
        {
          Owp_core.Serve_report.arrivals = Arrivals.to_string arrivals;
          horizon = arrivals.Arrivals.horizon;
          offered;
          served = !served;
          shed = !shed;
          joins = count "join";
          leaves = count "leave";
          reprefs = count "repref";
          queries = count "query";
          p50 = percentile lat 0.50;
          p99 = percentile lat 0.99;
          max_latency = (if Array.length lat = 0 then 0.0 else lat.(Array.length lat - 1));
          mean_service;
          throughput = float_of_int !served /. arrivals.Arrivals.horizon;
          max_queue = !max_queue;
          utilization = !busy /. arrivals.Arrivals.horizon;
          steady_satisfaction =
            (if !steady_n = 0 then 1.0 else !steady_sum /. float_of_int !steady_n);
          oracle_samples = !oracle_samples;
        }
      in
      Ok { !outcome with Pipeline.serve = Some report }
