(** The sustained-traffic serving engine ([owp serve]'s core).

    A serve session is a serial queue in {e virtual} time over the
    composed protocol stack: requests arrive by the seeded Poisson
    process an {!Arrivals.t} describes, each admitted request is
    serviced to completion in arrival order, and latency is queue wait
    plus service.  Joins, leaves and re-preference events are serviced
    by re-running the configured engine composition
    ({!Owp_core.Pipeline.run_config} with the session's current
    capacity vector — every layer flag of the config applies to every
    request); their service time is that run's virtual completion
    time.  Queries cost one propose-answer round.  When the backlog
    reaches the spec's queue bound, arriving requests are shed.

    Periodically (every [oracle] virtual units) the session runs a
    from-scratch LIC oracle on the current membership and records the
    served/ideal satisfaction ratio; samples past the warmup fraction
    of the horizon average into the steady-state figure.

    Everything is deterministic in (config seed, arrival spec): the
    report renders byte-identically across replays. *)

type kind = Join | Leave | Repref | Query

type request = { at : float; kind : kind; target : int }

val generate_requests : Arrivals.t -> seed:int -> n:int -> request list
(** The session's request stream, in arrival order — exposed for
    tests and experiments that want the exact trace. *)

val run :
  ?handicap:float ->
  arrivals:Arrivals.t ->
  Owp_core.Run_config.t ->
  Preference.t ->
  (Owp_core.Pipeline.outcome, string) result
(** Run one serve session.  The returned outcome is the session's last
    engine run with [serve = Some report]
    ({!Owp_core.Serve_report.t}).  [handicap] (default 0) adds the
    given virtual time to every request's service — the knob the gated
    benchmark uses to prove its latency regression gate fires.
    Errors on an invalid config or arrival spec, a negative handicap,
    or a non-LID-family engine (centralized engines have no protocol
    run to serve). *)
