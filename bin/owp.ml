(* owp — command-line driver for the overlays-with-preferences library.

   Subcommands:
     owp generate    synthesise a potential-connection graph
     owp stats       structural metrics of a graph file
     owp run         build an overlay matching with a chosen engine
     owp serve       drive the stack with a sustained request stream
     owp verify      check a saved matching against a graph and quota
     owp check       run the invariant checkers / interleaving explorer
     owp chaos       fuzz the stack with random fault schedules, shrink failures
     owp lint        static analysis over the .cmt typedtrees dune emits
     owp experiment  regenerate a paper experiment table (E0..E27)
     owp bench       experiments with the scale knobs: --jobs, --json, --gate
     owp list        list available experiments

   Every stack-running subcommand (`run`, `serve`, `check`, `chaos`,
   `bench`) shares the one Owp_cli term bundle: the same instance and
   composition flags everywhere, funnelled into one validated
   Owp_core.Run_config.t and handed to Pipeline.run_config (or the
   serving engine).  This file only keeps the per-subcommand verbs and
   printers. *)

open Cmdliner
module RC = Owp_core.Run_config
module P = Owp_core.Pipeline
module BM = Owp_matching.Bmatching
module Faults = Owp_simnet.Faults
module Schedule = Owp_simnet.Schedule

(* ------------------------------------------------------------------ *)
(* generate                                                             *)
(* ------------------------------------------------------------------ *)

let generate seed family n out =
  let inst = Owp_bench.Workloads.make ~seed ~family ~pref_model:Owp_bench.Workloads.Random_prefs ~n ~quota:1 in
  let text = Graph_io.to_string inst.Owp_bench.Workloads.graph in
  (match out with
  | None -> print_string text
  | Some path ->
      Graph_io.write path inst.Owp_bench.Workloads.graph;
      Printf.printf "wrote %s (%d nodes, %d edges)\n" path
        (Graph.node_count inst.Owp_bench.Workloads.graph)
        (Graph.edge_count inst.Owp_bench.Workloads.graph));
  0

let generate_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (stdout if absent).")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Synthesise a potential-connection graph")
    Term.(
      const generate $ Owp_cli.seed_arg $ Owp_cli.family_arg $ Owp_cli.n_arg $ out)

(* ------------------------------------------------------------------ *)
(* stats                                                                *)
(* ------------------------------------------------------------------ *)

let stats file =
  let g = Graph_io.read file in
  let _, components = Metrics.connected_components g in
  Printf.printf "nodes               : %d\n" (Graph.node_count g);
  Printf.printf "edges               : %d\n" (Graph.edge_count g);
  Printf.printf "average degree      : %.2f\n" (Metrics.average_degree g);
  Printf.printf "max degree          : %d\n" (Graph.max_degree g);
  Printf.printf "density             : %.5f\n" (Metrics.density g);
  Printf.printf "components          : %d\n" components;
  Printf.printf "diameter (lower bnd): %d\n" (Metrics.eccentricity_lower_bound g);
  Printf.printf "triangles           : %d\n" (Metrics.triangle_count g);
  Printf.printf "global clustering   : %.4f\n" (Metrics.global_clustering g);
  0

let stats_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"GRAPH" ~doc:"Edge-list file.") in
  Cmd.v (Cmd.info "stats" ~doc:"Structural metrics of a graph file") Term.(const stats $ file)

(* ------------------------------------------------------------------ *)
(* run                                                                  *)
(* ------------------------------------------------------------------ *)

let save_matching inst m path =
  let g = inst.Owp_bench.Workloads.graph in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "# owp matching: %d nodes, %d selected edges\n"
       (Graph.node_count g)
       (Owp_matching.Bmatching.size m));
  List.iter
    (fun eid ->
      let u, v = Graph.edge_endpoints g eid in
      Buffer.add_string buf (Printf.sprintf "%d %d\n" u v))
    (Owp_matching.Bmatching.edge_ids m);
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (Buffer.contents buf));
  Printf.printf "matching saved      : %s\n" path

(* The uniform per-layer counter table: one row per enabled middleware
   layer, top of the stack first. *)
let print_layer_table (r : Owp_core.Stack.report) =
  print_endline "layer counters      :";
  List.iter
    (fun { Owp_core.Stack.layer; counters } ->
      Printf.printf "  %-9s %s\n" layer
        (if counters = [] then "-"
         else
           String.concat ", "
             (List.map (fun (k, c) -> Printf.sprintf "%s=%d" k c) counters)))
    r.Owp_core.Stack.layers

(* One printer for every stack composition: transport accounting when
   the ARQ layer ran, adversary/guard accounting when adversaries were
   in play, then the per-layer counter table. *)
let print_stack_detail prefs (cfg : RC.t) (r : Owp_core.Stack.report) =
  let module Stack = Owp_core.Stack in
  let counter = Stack.counter r in
  let transport_on = List.exists (fun l -> l.Stack.layer = "transport") r.Stack.layers in
  if transport_on then begin
    Printf.printf "wire frames         : %d (%d data + %d retrans + %d ack)\n"
      (counter ~layer:"transport" "frames")
      (counter ~layer:"transport" "data")
      (counter ~layer:"transport" "retransmissions")
      (counter ~layer:"transport" "acks");
    Printf.printf "transport overhead  : %.2f frames/protocol message\n"
      (Stack.overhead r)
  end;
  if r.Stack.dropped + r.Stack.reordered + r.Stack.lost_to_crashes > 0 then
    Printf.printf "channel losses      : %d dropped, %d straggled, %d lost at down \
                   hosts\n"
      r.Stack.dropped r.Stack.reordered r.Stack.lost_to_crashes;
  if r.Stack.synthetic_rejects > 0 then
    Printf.printf "give-ups            : %d synthetic REJ (%d dead links, %d quiet \
                   round(s))\n"
      r.Stack.synthetic_rejects
      (counter ~layer:"transport" "dead-links")
      r.Stack.quiet_rounds;
  (match cfg.RC.byzantine with
  | None -> ()
  | Some spec ->
      let n = Array.length r.Stack.correct in
      let retained = Stack.satisfaction_of_correct prefs r in
      let reference = Stack.reference_satisfaction prefs ~correct:r.Stack.correct in
      Printf.printf "adversaries         : %s (%d of %d peers)\n" spec r.Stack.byz_count
        n;
      Printf.printf "guard               : %s\n"
        (if cfg.RC.guard then "on" else "off (baseline)");
      Printf.printf
        "satisfaction        : %.4f retained of %.4f crash-only ideal (%.1f%%)\n"
        retained reference
        (if reference = 0.0 then 100.0 else 100.0 *. retained /. reference);
      Printf.printf "adversarial msgs    : %d\n" r.Stack.adversary_msgs;
      Printf.printf "quarantines         : %d (%d false), %d of %d offenders caught\n"
        r.Stack.quarantine_events r.Stack.false_quarantines r.Stack.byz_quarantined
        r.Stack.byz_offenders;
      if r.Stack.offence_counts <> [] then
        Printf.printf "offences            : %s\n"
          (String.concat ", "
             (List.map
                (fun (k, c) -> Printf.sprintf "%s x%d" k c)
                r.Stack.offence_counts));
      Printf.printf "wasted slots        : %d (locked towards Byzantine peers)\n"
        r.Stack.wasted_slots;
      (match r.Stack.unterminated with
      | [] -> ()
      | stuck ->
          Printf.printf "stuck correct peers : %s\n"
            (String.concat " " (List.map string_of_int stuck)));
      match r.Stack.damage with
      | [] ->
          print_endline
            "bounded damage      : certified (termination, feasibility, relativized \
             Lemma 6)"
      | vs ->
          Printf.printf "bounded damage      : %d violation(s)\n" (List.length vs);
          Format.printf "%a@." Owp_check.Violation.pp_list vs);
  print_layer_table r

(* A budgeted run prints (and gates on) the anytime certificate: the
   frozen matching must be feasible and a prefix of the unbudgeted
   reference, which is recomputed here with the budget lifted (same
   seed, same layers — the event prefix is identical, so the full run
   is the served matching's natural yardstick). *)
let print_anytime_certificate (cfg : RC.t) inst (out : P.outcome)
    (c : Owp_core.Stack.cutoff) =
  let module A = Owp_check.Anytime in
  let prefs = inst.Owp_bench.Workloads.prefs in
  let full =
    P.run_config { cfg with RC.deadline = None; max_rounds = None; check = false } prefs
  in
  let cert =
    A.check
      (A.instance ~prefs
         ~reference:(BM.edge_ids full.P.matching)
         inst.Owp_bench.Workloads.weights
         ~capacity:inst.Owp_bench.Workloads.capacity
         ~budget:c.Owp_core.Stack.cut_at
         ~edges:(BM.edge_ids out.P.matching))
  in
  Printf.printf
    "cutoff              : budget %.2f, released %d, half-locks %d, abandoned %d\n"
    c.Owp_core.Stack.cut_at c.Owp_core.Stack.released c.Owp_core.Stack.half_locks
    c.Owp_core.Stack.abandoned;
  print_string (A.to_string cert);
  A.certified cert

(* A scheduled run prints (and, without adversaries, gates on) the
   self-stabilization certificate: after the last episode heals, the run
   must quiesce on the crash-only LIC edge set.  Under adversaries a
   lock wasted on a Byzantine peer legitimately breaks exact
   convergence, so there the bounded-damage verdict stays the gate and
   the certificate is informational.  Likewise under a deadline or
   round budget: a run frozen at (or before) the heal cannot converge
   by construction — the anytime certificate is the gate and the
   served prefix is the measured degradation. *)
let print_stabilize_certificate (cfg : RC.t) (out : P.outcome) =
  match out.P.stabilize with
  | None -> true
  | Some c ->
      print_string (Owp_check.Stabilize.to_string c);
      cfg.RC.byzantine <> None || RC.budgeted cfg
      || Owp_check.Stabilize.certified c

(* One printer for every engine: the generic outcome block, then the
   engine-specific accounting carried in [outcome.detail], then the
   timing summary as the final line.  The exit code is the run's
   verdict: protocol non-quiescence, Byzantine damage, a void anytime
   certificate, or a void self-stabilization certificate. *)
let print_outcome (cfg : RC.t) inst (out : P.outcome) save =
  let prefs = inst.Owp_bench.Workloads.prefs in
  let q = Owp_overlay.Quality.measure prefs out.P.matching in
  Printf.printf "instance            : %s\n" inst.Owp_bench.Workloads.label;
  Printf.printf "engine              : %s\n" (RC.engine_name out.P.engine);
  if Faults.any cfg.RC.faults then
    Printf.printf "faults              : %s\n" (Faults.to_string cfg.RC.faults);
  Printf.printf "links established   : %d\n" (BM.size out.P.matching);
  Printf.printf "total weight (eq.9) : %.4f\n" out.P.total_weight;
  Printf.printf "total satisfaction  : %.4f\n" out.P.total_satisfaction;
  Format.printf "quality             : %a@." Owp_overlay.Quality.pp q;
  (match out.P.guarantee with
  | Some b -> Printf.printf "satisfaction bound  : %.4f of optimum (Theorem 3)\n" b
  | None -> ());
  (match out.P.detail with
  | P.Plain -> ()
  | P.Stack r -> print_stack_detail prefs cfg r);
  let anytime_ok =
    match out.P.cutoff with
    | None -> true
    | Some c -> print_anytime_certificate cfg inst out c
  in
  let stabilize_ok = print_stabilize_certificate cfg out in
  (match out.P.quiesced with
  | Some q -> Printf.printf "quiesced            : %b\n" q
  | None -> ());
  (match out.P.check_report with
  | Some report -> print_string (Owp_check.Checker.report_to_string report)
  | None -> ());
  (match save with None -> () | Some path -> save_matching inst out.P.matching path);
  Printf.printf "-- wall %.2f ms%s%s\n" out.P.wall_ms
    (match out.P.rounds with
    | Some r -> Printf.sprintf ", rounds %.2f" r
    | None -> "")
    (match out.P.messages with
    | Some m -> Printf.sprintf ", messages %d" m
    | None -> "");
  let damage_free =
    match out.P.detail with P.Stack r -> r.Owp_core.Stack.damage = [] | _ -> true
  in
  if out.P.quiesced <> Some false && damage_free && anytime_ok && stabilize_ok then 0
  else 1

let run_overlay spec save =
  match Owp_cli.config spec with
  | Error msg ->
      Printf.eprintf "run: %s\n" msg;
      2
  | Ok cfg ->
      let inst = Owp_cli.instance spec in
      print_outcome cfg inst (P.run_config cfg inst.Owp_bench.Workloads.prefs) save

let run_cmd =
  let save =
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc:"Write the selected connections as an edge list.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Build an overlay matching and report its quality")
    Term.(const run_overlay $ Owp_cli.term $ save)

(* ------------------------------------------------------------------ *)
(* serve                                                                *)
(* ------------------------------------------------------------------ *)

let arrivals_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Owp_serve.Arrivals.of_string s) in
  Arg.conv (parse, Owp_serve.Arrivals.pp)

(* the sustained-traffic session: same instance and composition flags
   as `run`, plus the arrival-process spec; the exit code is the
   session verdict (every admitted request served, nothing shed unless
   the backlog bound forced it, the bootstrap run healthy) *)
let serve_session spec arrivals handicap =
  match Owp_cli.config spec with
  | Error msg ->
      Printf.eprintf "serve: %s\n" msg;
      2
  | Ok cfg -> (
      let inst = Owp_cli.instance spec in
      match
        Owp_serve.Serve.run ~handicap ~arrivals cfg inst.Owp_bench.Workloads.prefs
      with
      | Error msg ->
          Printf.eprintf "serve: %s\n" msg;
          2
      | Ok out ->
          let report = Option.get out.P.serve in
          Printf.printf "instance            : %s\n" inst.Owp_bench.Workloads.label;
          Printf.printf "stack               : %s\n" (RC.to_string cfg);
          print_string (Owp_core.Serve_report.summary report);
          let damage_free =
            match out.P.detail with
            | P.Stack r -> r.Owp_core.Stack.damage = []
            | P.Plain -> true
          in
          if damage_free && out.P.quiesced <> Some false then 0 else 1)

let serve_cmd =
  let arrivals =
    Arg.(
      value
      & opt arrivals_conv Owp_serve.Arrivals.default
      & info [ "arrivals" ] ~docv:"SPEC"
          ~doc:
            "Seeded arrival process: $(i,RATE[:FIELD=V,...]) with fields \
             $(i,join)/$(i,leave)/$(i,repref)/$(i,query) (mix weights), \
             $(i,horizon), $(i,queue) (backlog bound before shedding), \
             $(i,oracle) (LIC sampling period) and $(i,warmup); e.g. \
             $(b,4:query=3,horizon=300).  All times are virtual.")
  in
  let handicap =
    Arg.(
      value & opt float 0.0
      & info [ "handicap" ] ~docv:"T"
          ~doc:
            "Add T virtual-time units to every request's service time — a \
             synthetic latency regression for exercising the serve gate.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Drive the composed stack with a sustained request stream"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs a long-lived serving session: a seeded Poisson stream of \
              joins, leaves, re-preference events and satisfaction queries \
              against the standing overlay.  Mutations are serviced by \
              re-running the configured engine composition on the current \
              membership; queries cost one propose-answer round.  The report \
              carries latency percentiles (p50/p99), throughput, the backlog \
              peak, shedding counts, and steady-state satisfaction against a \
              periodically sampled from-scratch LIC oracle.  Identical flags \
              and seed reproduce the report byte for byte.";
         ])
    Term.(const serve_session $ Owp_cli.term $ arrivals $ handicap)

(* ------------------------------------------------------------------ *)
(* verify                                                               *)
(* ------------------------------------------------------------------ *)

let verify graph_file matching_file quota =
  let g = Graph_io.read graph_file in
  let lines =
    In_channel.with_open_text matching_file In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter_map (fun l ->
           let l = String.trim l in
           if l = "" || l.[0] = '#' then None
           else
             match String.split_on_char ' ' l with
             | [ u; v ] -> Some (int_of_string u, int_of_string v)
             | _ -> failwith "verify: malformed matching line")
  in
  let ids =
    List.map
      (fun (u, v) ->
        match Graph.find_edge g u v with
        | Some eid -> eid
        | None -> failwith (Printf.sprintf "verify: %d-%d is not an edge of the graph" u v))
      lines
  in
  let capacity = Array.make (Graph.node_count g) quota in
  match Owp_matching.Bmatching.of_edge_ids g ~capacity ids with
  | m ->
      Printf.printf "valid b-matching    : yes (%d edges, quota %d)\n"
        (Owp_matching.Bmatching.size m) quota;
      Printf.printf "maximal             : %b\n" (Owp_matching.Bmatching.is_maximal m);
      0
  | exception Invalid_argument msg ->
      Printf.eprintf "INVALID matching: %s\n" msg;
      1

let verify_cmd =
  let graph_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"GRAPH" ~doc:"Edge-list file.")
  in
  let matching_file =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"MATCHING" ~doc:"Saved matching (from run --save).")
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Validate a saved matching against a graph")
    Term.(const verify $ graph_file $ matching_file $ Owp_cli.quota_arg)

(* ------------------------------------------------------------------ *)
(* check                                                                *)
(* ------------------------------------------------------------------ *)

module Checker = Owp_check.Checker
module Explore = Owp_check.Explore

let parse_matching_edges g path =
  In_channel.with_open_text path In_channel.input_all
  |> String.split_on_char '\n'
  |> List.filter_map (fun l ->
         let l = String.trim l in
         if l = "" || l.[0] = '#' then None
         else
           match String.split_on_char ' ' l with
           | [ u; v ] -> Some (int_of_string u, int_of_string v)
           | _ -> failwith "check: malformed matching line")
  |> List.map (fun (u, v) ->
         match Graph.find_edge g u v with
         | Some eid -> eid
         | None ->
             failwith (Printf.sprintf "check: %d-%d is not an edge of the graph" u v))

let check_explore inst max_configs max_link_failures =
  let g = inst.Owp_bench.Workloads.graph in
  let n = Graph.node_count g in
  if n > 8 then begin
    Printf.eprintf
      "check --explore enumerates every FIFO schedule; instances must have n <= 8 \
       (got n = %d)\n"
      n;
    2
  end
  else begin
    let w = inst.Owp_bench.Workloads.weights in
    let capacity = inst.Owp_bench.Workloads.capacity in
    let verdict =
      Explore.explore ~max_configs ~max_link_failures (Owp_core.Lid.model w ~capacity)
    in
    Format.printf "%a" Explore.pp_verdict verdict;
    if max_link_failures = 0 then begin
      let lic = Owp_matching.Bmatching.edge_ids (Owp_core.Lic.run w ~capacity) in
      let lemma6 =
        match verdict.Explore.observations with [ obs ] -> obs = lic | _ -> false
      in
      Printf.printf "agrees with LIC    : %b (Lemma 6)\n" lemma6;
      if Explore.ok verdict && lemma6 then 0 else 1
    end
    else begin
      (* the adversary kills links, so the surviving edge set is
         schedule-dependent by design: only Lemma 5 is universally
         quantified here *)
      Printf.printf
        "adversarial drops  : up to %d link failure(s) interleaved everywhere; \
         termination holds on every schedule: %b\n"
        max_link_failures (Explore.ok verdict);
      if Explore.ok verdict then 0 else 1
    end
  end

(* one listing format shared by `check --list` and `lint --list`:
   sections of name/doc rows *)
let print_listing sections =
  List.iter
    (fun (header, rows) ->
      print_endline header;
      List.iter (fun (name, doc) -> Printf.printf "  %-22s %s\n" name doc) rows)
    sections;
  0

(* check --list: every diagnostic the suite can run, with one-line docs *)
let check_list () =
  print_listing
    [
      ( "structural checkers (owp check, owp check --matching):",
        List.map
          (fun c -> (c.Owp_check.Checker.name, c.Owp_check.Checker.doc))
          Owp_check.Checker.all );
      ( "interleaving explorer (owp check --explore):",
        [
          ("explore-termination", "every FIFO schedule quiesces (Lemma 5)");
          ("explore-divergence", "the locked edge set is schedule-independent (Lemma 6)");
          ("explore-truncated", "the state-space bound was hit before exhaustion");
        ] );
      ( "byzantine runs (owp check --byzantine, --explore --byzantine):",
        [ (Owp_check.Byzantine.name, Owp_check.Byzantine.doc) ] );
    ]

(* check --explore --byzantine: model-check the bounded-damage claim
   with one Byzantine node, quantified over every node choice, every
   injection interleaving, and every delivery order *)
let check_explore_byzantine inst ~guard max_configs =
  let n = Graph.node_count inst.Owp_bench.Workloads.graph in
  if n > 4 then begin
    Printf.eprintf
      "check --explore --byzantine enumerates every schedule x injection \
       interleaving; instances must have n <= 4 (got n = %d)\n"
      n;
    2
  end
  else begin
    let prefs = inst.Owp_bench.Workloads.prefs in
    let failed = ref 0 in
    for byz = 0 to n - 1 do
      let verdict = Owp_core.Stack.verify_exhaustively ~guard ~max_configs ~byz prefs in
      let nv = List.length verdict.Explore.violations in
      Printf.printf
        "byzantine node %d    : %d configuration(s), %d schedule(s), %d violation(s)\n"
        byz verdict.Explore.stats.Explore.configurations
        verdict.Explore.stats.Explore.schedules nv;
      if nv > 0 then begin
        incr failed;
        Format.printf "%a@." Owp_check.Violation.pp_list verdict.Explore.violations
      end
    done;
    Printf.printf "bounded damage      : %s (guard %s)\n"
      (if !failed = 0 then "certified on every interleaving" else "VIOLATED")
      (if guard then "on" else "off");
    if !failed = 0 then 0 else 1
  end

let print_check_report ?(converged = true) inst report =
  Printf.printf "instance            : %s\n" inst.Owp_bench.Workloads.label;
  print_string (Checker.report_to_string report);
  if Checker.ok report then begin
    print_endline "all invariants hold";
    if converged then 0 else 1
  end
  else begin
    Printf.printf "%d invariant violation(s)\n" (Checker.violation_count report);
    1
  end

let check_cmdline spec matching_file explore max_configs drops list =
  if list then check_list ()
  else begin
    let inst = Owp_cli.instance spec in
    if explore && spec.Owp_cli.byzantine <> None then
      check_explore_byzantine inst ~guard:spec.Owp_cli.guard max_configs
    else if explore then check_explore inst max_configs drops
    else
      match matching_file with
      | Some path ->
          (* check a saved (possibly corrupted) matching against the
             deterministically rebuilt instance *)
          let edges = parse_matching_edges inst.Owp_bench.Workloads.graph path in
          print_check_report inst
            (Checker.run
               (Checker.instance
                  ~prefs:inst.Owp_bench.Workloads.prefs
                  inst.Owp_bench.Workloads.weights
                  ~capacity:inst.Owp_bench.Workloads.capacity ~edges))
      | None -> begin
          (* run the configured engine with the checkers armed; a
             distributed run that never quiesced must fail even when the
             locked subset satisfies the structural invariants *)
          match Owp_cli.config ~check:true spec with
          | Error msg ->
              Printf.eprintf "check: %s\n" msg;
              2
          | Ok cfg ->
              let out = P.run_config cfg inst.Owp_bench.Workloads.prefs in
              (match out.P.quiesced with
              | Some q -> Printf.printf "converged           : %b\n" q
              | None -> ());
              let damage =
                match out.P.detail with
                | P.Stack r -> r.Owp_core.Stack.damage
                | P.Plain -> []
              in
              if damage <> [] then begin
                Printf.printf "bounded damage      : %d violation(s)\n"
                  (List.length damage);
                Format.printf "%a@." Owp_check.Violation.pp_list damage
              end;
              let anytime_ok =
                match out.P.cutoff with
                | None -> true
                | Some c -> print_anytime_certificate cfg inst out c
              in
              let stabilize_ok = print_stabilize_certificate cfg out in
              let rc =
                print_check_report
                  ~converged:(out.P.quiesced <> Some false)
                  inst
                  (Option.get out.P.check_report)
              in
              if damage = [] && anytime_ok && stabilize_ok then rc else 1
        end
  end

let check_cmd =
  let matching_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "matching" ] ~docv:"FILE"
          ~doc:
            "Check a saved matching (from run --save) instead of a fresh algorithm \
             run; the instance is rebuilt from the same $(b,--seed)/$(b,--family)/\
             $(b,--n)/$(b,--quota)/$(b,--prefs) flags (or $(b,--graph)).")
  in
  let explore =
    Arg.(
      value & flag
      & info [ "explore" ]
          ~doc:
            "Exhaustively enumerate every per-link FIFO message schedule of the LID \
             protocol on the instance (n <= 8) and verify termination (Lemma 5) and \
             schedule-independence of the locked edge set (Lemma 6).")
  in
  let max_configs =
    Arg.(
      value & opt int 2_000_000
      & info [ "max-configs" ] ~docv:"K"
          ~doc:"State-space bound for --explore; the search reports truncation.")
  in
  let drops =
    Arg.(
      value & opt int 0
      & info [ "drops" ] ~docv:"K"
          ~doc:
            "With --explore: adversarial link-failure budget.  The explorer \
             interleaves up to K permanent link failures (in-flight messages die, \
             both endpoints run the transport's give-up recovery) with every \
             delivery order, and demands termination on all of them (Lemma 5 under \
             failures).")
  in
  let list =
    Arg.(
      value & flag
      & info [ "list" ]
          ~doc:"List every registered checker with its one-line description and exit.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Run the structural invariant checkers or the interleaving explorer")
    Term.(
      const check_cmdline $ Owp_cli.term $ matching_file $ explore $ max_configs
      $ drops $ list)

(* ------------------------------------------------------------------ *)
(* lint                                                                 *)
(* ------------------------------------------------------------------ *)

(* the typedtree analyzer: reads the .cmt files dune already emitted,
   so a plain `dune build` is the only prerequisite *)
let default_lint_roots =
  [ "_build/default/lib"; "_build/default/bin"; "_build/default/bench" ]

let lint_list () =
  print_listing
    [
      ( "typedtree lint rules (owp lint, owp lint --rule NAME):",
        List.map
          (fun r -> (r.Owp_lint.Rule.name, r.Owp_lint.Rule.doc))
          Owp_lint.Registry.all );
    ]

let lint_cmdline json list rules roots =
  if list then lint_list ()
  else begin
    let roots =
      match roots with
      | [] ->
          let existing = List.filter Sys.file_exists default_lint_roots in
          if existing = [] then default_lint_roots else existing
      | rs -> rs
    in
    let only = match rules with [] -> None | rs -> Some rs in
    match Owp_lint.Driver.run ?only ~roots () with
    | Error msg ->
        Printf.eprintf "lint: %s\n" msg;
        2
    | Ok r ->
        if json then print_endline (Owp_lint.Driver.to_json r)
        else Format.printf "%a" Owp_lint.Driver.pp_human r;
        if r.Owp_lint.Driver.findings = [] then 0 else 1
  end

let lint_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the report as one JSON object instead of compiler-style lines.")
  in
  let list =
    Arg.(
      value & flag
      & info [ "list" ]
          ~doc:"List every registered rule with its one-line description and exit.")
  in
  let rules =
    Arg.(
      value
      & opt_all string []
      & info [ "rule" ] ~docv:"NAME"
          ~doc:"Run only the named rule (repeatable); default is every rule.")
  in
  let roots =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"ROOT"
          ~doc:
            "Directories to scan for .cmt files; defaults to \
             _build/default/{lib,bin,bench}.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Static analysis over the typedtrees dune emits (.cmt files)"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs the repo's rule registry (purity of the protocol core, \
              iteration-order determinism, clock hygiene, seeded randomness, \
              float comparison discipline, domain-safety of pool tasks, the \
              single-state-machine property, and layer conformance) over the \
              typed ASTs produced by $(b,dune build).  Exit status is 1 when \
              unsuppressed findings remain, 2 on usage or scan errors.";
           `P
             "Findings are suppressed in source with \
              (* owp-lint: allow RULE — reason *) on the offending line or the \
              line above; (* owp-lint: pure *) opts a module into the \
              pure-core rule.";
         ])
    Term.(const lint_cmdline $ json $ list $ rules $ roots)

(* ------------------------------------------------------------------ *)
(* chaos                                                                *)
(* ------------------------------------------------------------------ *)

(* the chaos fuzzer: seeded random fault schedules thrown at the
   configured stack composition, demanding the self-stabilization
   certificate from every run; the first failure is shrunk
   delta-debugging-style to a minimal --schedule reproducer and the
   exit status is the verdict *)
let chaos spec trials max_episodes horizon from_spec =
  let module Chaos = Owp_bench.Chaos in
  let seed = spec.Owp_cli.seed in
  if not (Schedule.is_empty spec.Owp_cli.schedule) then begin
    Printf.eprintf
      "chaos: generates its own schedules; use --from SPEC to replay one\n";
    2
  end
  else if spec.Owp_cli.deadline <> None || spec.Owp_cli.max_rounds <> None then begin
    Printf.eprintf
      "chaos: the self-stabilization certificate needs unbudgeted runs; drop \
       --deadline/--max-rounds\n";
    2
  end
  else if not (RC.lid_family (Owp_cli.engine spec)) then begin
    Printf.eprintf
      "chaos: fault schedules need the protocol stack; engine %s has no \
       protocol run\n"
      (RC.engine_name (Owp_cli.engine spec));
    2
  end
  else
  match Owp_cli.config spec with
  | Error msg ->
      Printf.eprintf "chaos: %s\n" msg;
      2
  | Ok cfg -> begin
      let inst = Owp_cli.instance spec in
      let prefs = inst.Owp_bench.Workloads.prefs in
      Printf.printf "instance            : %s\n" inst.Owp_bench.Workloads.label;
      Printf.printf "stack               : %s\n" (RC.to_string cfg);
      let fails s = not (Chaos.run_one cfg prefs s).Chaos.passed in
      let report_failure ~origin ~sched ~shrunk =
        let r = Chaos.run_one cfg prefs shrunk in
        Printf.printf "chaos               : FAIL (%s)\n" origin;
        Printf.printf "failing schedule    : %s\n" (Schedule.to_string sched);
        Printf.printf "shrunk reproducer   : %s (%d episode(s))\n"
          (Schedule.to_string shrunk) (List.length shrunk);
        Option.iter print_string r.Chaos.certificate;
        Printf.printf
          "reproduce with      : owp run <same instance/stack flags> --schedule '%s'\n"
          (Schedule.to_string shrunk);
        1
      in
      match from_spec with
      | Some sched ->
          if Schedule.is_empty sched then begin
            Printf.eprintf "chaos: --from needs a non-empty schedule\n";
            2
          end
          else begin
            let r = Chaos.run_one cfg prefs sched in
            Printf.printf "schedule            : %s\n" r.Chaos.summary;
            if r.Chaos.passed then begin
              Option.iter print_string r.Chaos.certificate;
              print_endline "chaos               : PASS (schedule certifies)";
              0
            end
            else report_failure ~origin:"--from" ~sched ~shrunk:(Chaos.shrink ~fails sched)
          end
      | None -> (
          let rep = Chaos.fuzz ~trials ~max_episodes ~horizon ~seed cfg prefs in
          match rep.Chaos.failure with
          | None ->
              Printf.printf "chaos               : PASS (%d seeded trial(s) certified)\n"
                rep.Chaos.trials_run;
              0
          | Some (i, sched, shrunk) ->
              report_failure
                ~origin:(Printf.sprintf "trial %d of %d, seed %d" (i + 1) trials seed)
                ~sched ~shrunk)
    end

let chaos_cmd =
  let trials =
    Arg.(
      value & opt int 20
      & info [ "trials" ] ~docv:"K"
          ~doc:"Seeded random schedules to try (deterministic per --seed).")
  in
  let max_episodes =
    Arg.(
      value & opt int 4
      & info [ "max-episodes" ] ~docv:"K" ~doc:"Episodes per generated schedule (1..K).")
  in
  let horizon =
    Arg.(
      value & opt float 12.0
      & info [ "horizon" ] ~docv:"T"
          ~doc:"Virtual-time window the generated episodes live in.")
  in
  let from_spec =
    Arg.(
      value
      & opt (some Owp_cli.schedule_conv) None
      & info [ "from" ] ~docv:"SPEC"
          ~doc:
            "Skip generation: run (and on failure shrink) this one schedule — the \
             regression mode CI uses for known-bad fixtures.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Fuzz the stack with random fault schedules; shrink failures to minimal reproducers"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Generates seeded random fault schedules (partitions, link outages, \
              flapping, loss bursts, crash-restarts), runs the configured stack \
              composition under each, and demands the self-stabilization \
              certificate: after the last episode heals, the run must quiesce on \
              the crash-only LIC edge set.  On the first failure the schedule is \
              shrunk delta-debugging-style — dropping episodes, halving durations, \
              merging partition blocks, thinning link lists — to a minimal \
              reproducer that still fails, printed as a $(b,--schedule) spec.  \
              Exit status 0 when every trial certifies, 1 with a reproducer \
              otherwise.";
           `P
             "Note that a partition heals but a datagram loses what it dropped: \
              without $(b,--reliable) most non-trivial schedules genuinely break \
              convergence, which makes an unreliable stack the natural known-bad \
              fixture and the ARQ stack the certifying one.";
         ])
    Term.(const chaos $ Owp_cli.term $ trials $ max_episodes $ horizon $ from_spec)

(* ------------------------------------------------------------------ *)
(* experiment                                                           *)
(* ------------------------------------------------------------------ *)

let experiment quick ids =
  let out = Format.std_formatter in
  match ids with
  | [] ->
      Owp_bench.Experiments.run_all ~quick ~out ();
      0
  | ids ->
      if List.for_all (Owp_bench.Experiments.run_one ~quick ~out) ids then 0
      else begin
        prerr_endline "unknown experiment id (see `owp list`)";
        2
      end

let experiment_cmd =
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Trimmed sweeps.") in
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (E0..E27); all when omitted.") in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a paper experiment table")
    Term.(const experiment $ quick $ ids)

(* ------------------------------------------------------------------ *)
(* bench                                                                *)
(* ------------------------------------------------------------------ *)

(* `owp experiment` with the scale knobs: the worker-pool width, JSON
   emission for trajectory tracking, and the CI smoke gate *)
(* bench --deadline T: the anytime smoke gate.  A trimmed E25 preset —
   budgeted runs up to T must all certify (feasible + prefix of the
   full run) and satisfaction must be monotone in the budget on the
   fixed seed. *)
let bench_anytime_gate d =
  if d <= 0.0 then begin
    Printf.eprintf "bench: --deadline %g: the budget is a positive virtual-time horizon\n" d;
    2
  end
  else begin
    let module E25 = Owp_bench.E25_deadline in
    let s = E25.smoke ~deadline:d () in
    List.iter
      (fun (p : Owp_bench.Anytime_curves.point) ->
        Printf.printf
          "  budget %6.2f     : %5.1f%% of full-run satisfaction, %d blocking \
           pair(s), %d link(s)%s\n"
          p.Owp_bench.Anytime_curves.budget
          (100.0 *. p.Owp_bench.Anytime_curves.retained)
          p.Owp_bench.Anytime_curves.blocking_pairs
          p.Owp_bench.Anytime_curves.served_edges
          (if p.Owp_bench.Anytime_curves.certified then "" else "  [VOID]"))
      s.E25.curve;
    Printf.printf "anytime gate        : certified %b, monotone %b\n" s.E25.certified
      s.E25.monotone;
    if s.E25.certified && s.E25.monotone then begin
      print_endline "anytime gate        : PASS";
      0
    end
    else begin
      print_endline "anytime gate        : FAIL";
      1
    end
  end

(* bench --gate: the CI regression gate.  Two presets back to back: the
   E23 scale smoke (indexed engine vs reference) and the E27 serve
   smoke (latency percentiles and steady satisfaction of a short
   sustained-traffic session against fixed bounds).  --inject plants a
   known regression — extra per-request latency or unguarded liars —
   so CI can check the gate actually trips. *)
let bench_gate ~jobs ~inject spec =
  let s = Owp_bench.E23_scale.smoke ~jobs () in
  Printf.printf "scale gate          : reference %.2f ms, indexed %.2f ms (%.1fx)\n"
    s.Owp_bench.E23_scale.reference_ms s.Owp_bench.E23_scale.indexed_ms
    (if s.Owp_bench.E23_scale.indexed_ms <= 0.0 then infinity
     else s.Owp_bench.E23_scale.reference_ms /. s.Owp_bench.E23_scale.indexed_ms);
  Printf.printf "identical edge sets : %b\n" s.Owp_bench.E23_scale.identical;
  Printf.printf "jobs deterministic  : %b\n" s.Owp_bench.E23_scale.jobs_deterministic;
  let scale_ok =
    s.Owp_bench.E23_scale.identical
    && s.Owp_bench.E23_scale.jobs_deterministic
    && s.Owp_bench.E23_scale.indexed_ms <= s.Owp_bench.E23_scale.reference_ms
  in
  (* the shard-determinism preset: every layer composition, sequential
     vs sharded event store, full-report bit-identity.  --inject
     lookahead swaps in the wheel's deliberately wrong dispatch order
     and expects this preset (and so the gate) to trip. *)
  let wheel =
    Owp_bench.E28_wheel.shard_gate
      ~unsafe_lookahead:(inject = Some `Lookahead) ()
  in
  Printf.printf "shard gate          : %d compositions x shards {%s} bit-identical %b\n"
    wheel.Owp_bench.E28_wheel.compositions_checked
    (String.concat ","
       (List.map string_of_int wheel.Owp_bench.E28_wheel.shards_checked))
    wheel.Owp_bench.E28_wheel.identical;
  let scale_ok = scale_ok && wheel.Owp_bench.E28_wheel.identical in
  (* the serve gate's stack comes from the shared bundle (default:
     plain LID), so a CI job can gate any composition *)
  let spec =
    match inject with
    | Some `Quality ->
        { spec with Owp_cli.byzantine = Some "liar:0.3"; guard = false }
    | _ -> spec
  in
  let handicap =
    match inject with Some `Latency -> Owp_bench.E27_serve.latency_injection | _ -> 0.0
  in
  match Owp_cli.config spec with
  | Error msg ->
      Printf.eprintf "bench: %s\n" msg;
      2
  | Ok cfg -> (
      match Owp_bench.E27_serve.gate ~handicap ~cfg () with
      | Error msg ->
          Printf.eprintf "bench: serve gate: %s\n" msg;
          2
      | Ok g ->
          let module E27 = Owp_bench.E27_serve in
          Printf.printf
            "serve gate          : p50 %.2f, p99 %.2f (bound %.2f), steady %.4f \
             (bound %.4f)\n"
            g.E27.p50 g.E27.p99 g.E27.p99_bound g.E27.steady g.E27.steady_bound;
          Printf.printf "serve deterministic : %b\n" g.E27.deterministic;
          if scale_ok && g.E27.passed then begin
            print_endline "bench gate          : PASS";
            0
          end
          else begin
            print_endline "bench gate          : FAIL";
            1
          end)

let bench quick jobs json_dir gate inject spec ids =
  (* measured walls, so trade memory for GC quiet: a 2M-word minor heap
     keeps the delivery loop's survivors out of repeated minor
     collections, and a relaxed space overhead stops the major GC from
     dominating the matching-extraction phase at the 10^5+ sizes *)
  Gc.set { (Gc.get ()) with minor_heap_size = 2_097_152; space_overhead = 200 };
  let jobs = if jobs <= 0 then Owp_util.Pool.default_jobs () else jobs in
  Owp_bench.Exp_common.jobs := jobs;
  match spec.Owp_cli.deadline with
  | Some d -> bench_anytime_gate d
  | None ->
  if gate then bench_gate ~jobs ~inject spec
  else begin
    Option.iter
      (fun dir -> if not (Sys.file_exists dir) then Sys.mkdir dir 0o755)
      json_dir;
    let out = Format.std_formatter in
    match ids with
    | [] ->
        Owp_bench.Experiments.run_all ~quick ?json_dir ~out ();
        0
    | ids ->
        if List.for_all (Owp_bench.Experiments.run_one ~quick ?json_dir ~out) ids then 0
        else begin
          prerr_endline "unknown experiment id (see `owp list`)";
          2
        end
  end

let bench_cmd =
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Trimmed sweeps.") in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for trial sweeps (0 = all cores).  Per-trial results \
             are bit-identical across any N (deterministic per-trial PRNG streams).")
  in
  let json_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"DIR"
          ~doc:"Also write each experiment's tables as DIR/BENCH_<id>.json.")
  in
  let gate =
    Arg.(
      value & flag
      & info [ "gate" ]
          ~doc:
            "CI regression gate: run the small E23 preset (indexed engine must \
             match the reference edge set, be at least as fast, with a \
             deterministic worker pool) and the E27 serve preset (p99 latency \
             and steady-state satisfaction of a short sustained-traffic \
             session against fixed bounds, byte-identical across repeats).")
  in
  let inject =
    Arg.(
      value
      & opt
          (some
             (enum
                [ ("latency", `Latency); ("quality", `Quality);
                  ("lookahead", `Lookahead) ]))
          None
      & info [ "inject" ] ~docv:"KIND"
          ~doc:
            "With $(b,--gate): plant a known regression and expect the gate \
             to FAIL (the CI self-test that the gate can trip) — $(i,latency) \
             adds a per-request service handicap, $(i,quality) swaps in \
             unguarded liars, $(i,lookahead) enables the event wheel's \
             deliberately wrong dispatch order, which the shard-determinism \
             preset must catch.")
  in
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids; all when omitted.")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Run experiments with the scale knobs: --jobs, --json, --gate, --deadline")
    Term.(
      const bench $ quick $ jobs $ json_dir $ gate $ inject $ Owp_cli.term $ ids)

let list_cmd =
  Cmd.v
    (Cmd.info "list" ~doc:"List available experiments")
    Term.(
      const (fun () ->
          List.iter
            (fun e ->
              Printf.printf "%-4s %-45s [%s]\n" e.Owp_bench.Exp_common.id
                e.Owp_bench.Exp_common.title e.Owp_bench.Exp_common.paper_ref)
            Owp_bench.Experiments.all;
          0)
      $ const ())

(* ------------------------------------------------------------------ *)

let main_cmd =
  Cmd.group
    (Cmd.info "owp" ~version:"1.0.0"
       ~doc:"Overlays with preferences: satisfaction-maximising b-matching (IPDPS 2010)")
    [
      generate_cmd;
      stats_cmd;
      run_cmd;
      serve_cmd;
      verify_cmd;
      check_cmd;
      chaos_cmd;
      lint_cmd;
      experiment_cmd;
      bench_cmd;
      list_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
