(* The one term bundle behind every owp subcommand that runs the stack.

   `run`, `check`, `chaos`, `bench` and `serve` all face the same
   composition surface: an instance (seed/family/n/quota/prefs or an
   edge-list file) and a stack selection (engine, faults, schedule,
   ARQ, Byzantine spec, guard, anytime budget).  Before this module
   each subcommand copied the cmdliner declarations by hand and the
   help text drifted; now there is exactly one declaration of each
   flag, one instance builder, and one path from flags to a validated
   Run_config.t — a new subcommand inherits the whole composition by
   including [term] in its cmdliner expression. *)

open Cmdliner
module RC = Owp_core.Run_config
module Faults = Owp_simnet.Faults
module Schedule = Owp_simnet.Schedule

(* ------------------------------------------------------------------ *)
(* instance arguments                                                   *)
(* ------------------------------------------------------------------ *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let n_arg =
  Arg.(value & opt int 1000 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of peers.")

let quota_arg =
  Arg.(value & opt int 3 & info [ "b"; "quota" ] ~docv:"B" ~doc:"Connection quota per peer.")

let family_conv =
  let parse s =
    match String.split_on_char ':' (String.lowercase_ascii s) with
    | [ "gnp"; p ] -> Ok (Owp_bench.Workloads.Gnp (float_of_string p))
    | [ "deg"; d ] -> Ok (Owp_bench.Workloads.Gnm_avg_deg (float_of_string d))
    | [ "ba"; m ] -> Ok (Owp_bench.Workloads.Ba (int_of_string m))
    | [ "ws"; k; beta ] ->
        Ok (Owp_bench.Workloads.Ws (int_of_string k, float_of_string beta))
    | [ "geo"; r ] -> Ok (Owp_bench.Workloads.Geometric (float_of_string r))
    | [ "torus" ] -> Ok Owp_bench.Workloads.Torus
    | [ "pl"; e; d ] ->
        Ok (Owp_bench.Workloads.Power_law (float_of_string e, int_of_string d))
    | _ ->
        Error
          (`Msg
            "expected gnp:P | deg:D | ba:M | ws:K:BETA | geo:R | torus | pl:EXP:MINDEG")
  in
  let print ppf f = Format.pp_print_string ppf (Owp_bench.Workloads.family_name f) in
  Arg.conv (parse, print)

let family_arg =
  Arg.(
    value
    & opt family_conv (Owp_bench.Workloads.Gnm_avg_deg 8.0)
    & info [ "family" ] ~docv:"FAMILY"
        ~doc:
          "Graph family: gnp:P, deg:D (G(n,m) with average degree D), ba:M, ws:K:BETA, \
           geo:R, torus, pl:EXP:MINDEG.")

let model_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "random" -> Ok Owp_bench.Workloads.Random_prefs
    | "latency" -> Ok Owp_bench.Workloads.Latency_prefs
    | "bandwidth" -> Ok Owp_bench.Workloads.Bandwidth_prefs
    | "transactions" -> Ok Owp_bench.Workloads.Transaction_prefs
    | s when String.length s > 9 && String.sub s 0 9 = "interest:" ->
        Ok (Owp_bench.Workloads.Interest_prefs (int_of_string (String.sub s 9 (String.length s - 9))))
    | _ -> Error (`Msg "expected random | latency | bandwidth | transactions | interest:D")
  in
  let print ppf m = Format.pp_print_string ppf (Owp_bench.Workloads.pref_model_name m) in
  Arg.conv (parse, print)

let model_arg =
  Arg.(
    value
    & opt model_conv Owp_bench.Workloads.Random_prefs
    & info [ "prefs" ] ~docv:"MODEL"
        ~doc:"Preference model: random, latency, bandwidth, transactions, interest:D.")

let graph_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "graph" ] ~docv:"FILE" ~doc:"Use an edge-list file instead of generating.")

(* ------------------------------------------------------------------ *)
(* stack arguments                                                      *)
(* ------------------------------------------------------------------ *)

let engine_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (RC.engine_of_string s) in
  let print ppf e = Format.pp_print_string ppf (RC.engine_name e) in
  Arg.conv (parse, print)

(* the historical --algo vocabulary, kept as a legacy spelling of
   --engine *)
let algo_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "lid" -> Ok RC.Lid
    | "lic" -> Ok RC.Lic
    | "greedy" -> Ok RC.Greedy
    | "dynamics" -> Ok RC.Dynamics
    | _ -> Error (`Msg "expected lid | lic | greedy | dynamics")
  in
  let print ppf e = Format.pp_print_string ppf (RC.engine_name e) in
  Arg.conv (parse, print)

let faults_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Faults.of_string s) in
  Arg.conv (parse, Faults.pp)

let schedule_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Schedule.of_string s) in
  Arg.conv (parse, Schedule.pp)

let engine_arg =
  Arg.(
    value
    & opt (some engine_conv) None
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Selection engine: lic (reference rescans), lic-indexed (per-node \
           max-weight edge indexes), lid, lid-reliable, lid-byzantine, greedy, \
           dynamics.  Overrides $(b,--algo)/$(b,--reliable)/$(b,--byzantine) \
           engine inference.")

let algo_arg =
  Arg.(
    value & opt algo_conv RC.Lid
    & info [ "algo" ] ~docv:"ALGO"
        ~doc:"Legacy spelling of $(b,--engine): lid, lic, greedy or dynamics.")

let faults_arg =
  Arg.(
    value & opt faults_conv Faults.none
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Fault environment as one spec: comma-separated $(i,drop=P), \
           $(i,dup=P), $(i,reorder=P), $(i,crash=F), $(i,patience=T) and the \
           bare flags $(i,unordered)/$(i,fifo); e.g. \
           $(b,drop=0.2,dup=0.1,unordered).  The legacy per-fault flags \
           override matching fields.")

let schedule_arg =
  Arg.(
    value & opt schedule_conv Schedule.empty
    & info [ "schedule" ] ~docv:"SPEC"
        ~doc:
          "Time-varying fault episodes layered over $(b,--faults): \
           semicolon-separated $(i,KIND:...@T0-T1) episodes with kinds \
           $(i,part) (node groups joined by $(b,.), separated by $(b,|); \
           unlisted nodes form the implicit rest-block), $(i,link) (links \
           $(i,U.V) down), $(i,flap:LINKS:PERIOD:DUTY), $(i,burst:P) \
           (global loss), and $(i,down:NODES) (crash at T0, amnesiac \
           restart at T1); e.g. $(b,'part:0.1.2@2-6;burst:0.9@8-9').  A \
           non-empty schedule arms the self-stabilization certificate: \
           after the last episode heals the run must quiesce on the \
           crash-only LIC edge set.")

let reliable_arg =
  Arg.(
    value & flag
    & info [ "reliable" ]
        ~doc:
          "Run LID over the reliable transport (per-link sequence numbers, cumulative \
           ACKs, retransmission with backoff) so the protocol converges despite \
           $(b,--drop)/$(b,--dup)/$(b,--reorder)/$(b,--crash).")

let drop_arg =
  Arg.(
    value & opt float 0.0
    & info [ "drop" ] ~docv:"P" ~doc:"Per-message loss probability (mask it with --reliable).")

let dup_arg =
  Arg.(
    value & opt float 0.0
    & info [ "dup" ] ~docv:"P" ~doc:"Per-message duplication probability (mask it with --reliable).")

let reorder_arg =
  Arg.(
    value & opt float 0.0
    & info [ "reorder" ] ~docv:"P"
        ~doc:"Per-message straggler probability — breaks FIFO even on FIFO links (mask it with --reliable).")

let no_fifo_arg =
  Arg.(
    value & flag
    & info [ "unordered" ]
        ~doc:"Disable per-link FIFO delivery in the simulated network (non-FIFO regime).")

let crash_arg =
  Arg.(
    value & opt float 0.0
    & info [ "crash" ] ~docv:"FRAC"
        ~doc:
          "Fraction of peers that fail-stop at a random early point (arms a \
           default patience of 60 unless --patience is given).")

let patience_arg =
  Arg.(
    value & opt (some float) None
    & info [ "patience" ] ~docv:"T"
        ~doc:
          "Protocol-level wait timeout for peers that fall silent after ACKing \
           (virtual time; default: off, which preserves exactness under pure channel \
           faults).")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"T"
        ~doc:
          "Anytime budget: halt message delivery at virtual time T, freeze the \
           feasible partial matching (mutually locked links kept, tentative \
           proposals released on both sides) and report a certified anytime \
           outcome instead of running to quiescence.  Composes with every \
           other layer flag; give either this or $(b,--max-rounds), not both.  \
           ($(b,owp bench) reads it as the anytime smoke-gate budget; \
           $(b,owp serve) applies it per request.)")

let max_rounds_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-rounds" ] ~docv:"K"
        ~doc:
          "Anytime budget as a round count: K propose-answer rounds, converted \
           to a virtual-time deadline through the delay model's round length.  \
           Give either this or $(b,--deadline), not both.")

let byzantine_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "byzantine" ] ~docv:"SPEC"
        ~doc:
          "Hand a random node subset to adversary behaviours: \
           $(i,MODEL:FRAC[,MODEL:FRAC...]) with models liar, equivocator, \
           flooder, replayer, violator (e.g. $(b,liar:0.2)).  Runs LID with \
           the remaining correct peers and reports the bounded-damage verdict.")

let sim_shards_arg =
  Arg.(
    value & opt int 1
    & info [ "sim-shards" ] ~docv:"N"
        ~doc:
          "Space-partition the simulator's event store into N shards (one \
           bucketed event wheel per contiguous node range), merged on the \
           global (at, seq) key.  Results are bit-identical for every N — \
           same messages, same coins, same counters; the knob only changes \
           which structures can be prepared concurrently across domains.")

let guard_arg =
  Arg.(
    value & flag
    & info [ "guard" ]
        ~doc:
          "Enable the inbound protocol guard: advert vetting against the \
           public 1/b weight bound, per-link state-machine validation, \
           flood limits, and quarantine of offenders (with $(b,--byzantine); \
           without it the run is the vulnerable baseline).")

(* ------------------------------------------------------------------ *)
(* the bundle                                                           *)
(* ------------------------------------------------------------------ *)

type t = {
  seed : int;
  family : Owp_bench.Workloads.family;
  n : int;
  quota : int;
  model : Owp_bench.Workloads.pref_model;
  graph_file : string option;
  engine_opt : RC.engine option;
  algo : RC.engine;
  reliable : bool;
  faults : Faults.t;  (* legacy per-fault flags already merged in *)
  schedule : Schedule.t;
  deadline : float option;
  max_rounds : int option;
  byzantine : string option;
  guard : bool;
  sim_shards : int;
}

(* Every legacy fault flag simply overrides its field of the --faults
   record, so both spellings (and any mix) land in the same
   Owp_simnet.Faults.t. *)
let merge_faults (f : Faults.t) ~drop ~dup ~reorder ~no_fifo ~crash ~patience =
  {
    Faults.drop = (if drop > 0.0 then drop else f.Faults.drop);
    duplicate = (if dup > 0.0 then dup else f.duplicate);
    reorder = (if reorder > 0.0 then reorder else f.reorder);
    fifo = f.fifo && not no_fifo;
    crash = (if crash > 0.0 then crash else f.crash);
    patience = (match patience with Some _ -> patience | None -> f.patience);
  }

let make seed family n quota model graph_file engine_opt algo reliable faults_spec
    schedule drop dup reorder no_fifo crash patience deadline max_rounds byzantine
    guard sim_shards =
  {
    seed;
    family;
    n;
    quota;
    model;
    graph_file;
    engine_opt;
    algo;
    reliable;
    faults = merge_faults faults_spec ~drop ~dup ~reorder ~no_fifo ~crash ~patience;
    schedule;
    deadline;
    max_rounds;
    byzantine;
    guard;
    sim_shards;
  }

let term =
  Term.(
    const make $ seed_arg $ family_arg $ n_arg $ quota_arg $ model_arg $ graph_arg
    $ engine_arg $ algo_arg $ reliable_arg $ faults_arg $ schedule_arg $ drop_arg
    $ dup_arg $ reorder_arg $ no_fifo_arg $ crash_arg $ patience_arg $ deadline_arg
    $ max_rounds_arg $ byzantine_arg $ guard_arg $ sim_shards_arg)

(* the instance is rebuilt deterministically from
   (seed, family, n, quota, model) or from an edge-list file, so a
   matching saved by `run` can be re-checked later with the same
   flags *)
let instance t =
  match t.graph_file with
  | Some path ->
      let g = Graph_io.read path in
      let q = Preference.uniform_quota g t.quota in
      let rng = Owp_util.Prng.create t.seed in
      let prefs =
        match t.model with
        | Owp_bench.Workloads.Random_prefs -> Preference.random rng g ~quota:q
        | Owp_bench.Workloads.Latency_prefs ->
            let pts =
              Array.init (Graph.node_count g) (fun _ ->
                  (Owp_util.Prng.float rng 1.0, Owp_util.Prng.float rng 1.0))
            in
            Preference.of_metric g ~quota:q (Metric.latency pts)
        | Owp_bench.Workloads.Interest_prefs d ->
            Preference.of_metric g ~quota:q (Metric.interest ~seed:t.seed ~dims:d)
        | Owp_bench.Workloads.Bandwidth_prefs ->
            Preference.of_metric g ~quota:q (Metric.bandwidth ~seed:t.seed)
        | Owp_bench.Workloads.Transaction_prefs ->
            Preference.of_metric g ~quota:q (Metric.transaction_history ~seed:t.seed)
      in
      {
        Owp_bench.Workloads.label = path;
        graph = g;
        prefs;
        weights = Weights.of_preference prefs;
        capacity = Array.init (Graph.node_count g) (Preference.quota prefs);
      }
  | None ->
      Owp_bench.Workloads.make ~seed:t.seed ~family:t.family ~pref_model:t.model
        ~n:t.n ~quota:t.quota

(* --engine wins; otherwise the composition flags pick the LID variant
   and --algo (legacy) supplies the base engine.  Since the drivers
   collapsed into the layered stack, --reliable/--faults/--byzantine/
   --guard compose freely: they select middleware layers, not engines,
   so any subset rides whatever LID-family engine resolves here. *)
let engine t =
  match t.engine_opt with
  | Some e -> e
  | None ->
      if t.byzantine <> None then RC.Lid_byzantine
      else if t.reliable then RC.Lid_reliable
      else t.algo

let config ?(check = false) t =
  RC.validate
    (RC.make ~engine:(engine t) ~seed:t.seed ~faults:t.faults ~schedule:t.schedule
       ~reliable:t.reliable ?byzantine:t.byzantine ~guard:t.guard
       ~sim_shards:t.sim_shards ?deadline:t.deadline ?max_rounds:t.max_rounds
       ~check ())
